"""Latency/throughput recording and summary statistics.

Produces the quantities the paper reports: RPS over time (Figs 9, 11, 12),
response-time CDFs per chain (Fig 10), percentile tables (Table 5), and
mean/95/99 latencies with confidence intervals (Fig 5's error bars).
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class LatencySummary:
    """Summary statistics over one set of samples."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    p999: float
    minimum: float
    maximum: float
    stddev: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "p999": self.p999,
            "min": self.minimum,
            "max": self.maximum,
            "stddev": self.stddev,
        }


def percentile(sorted_samples: list[float], fraction: float) -> float:
    """Nearest-rank-with-interpolation percentile on pre-sorted data."""
    if not sorted_samples:
        raise ValueError("no samples")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    rank = fraction * (len(sorted_samples) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return sorted_samples[low]
    weight = rank - low
    return sorted_samples[low] * (1 - weight) + sorted_samples[high] * weight


def summarize(samples: list[float]) -> LatencySummary:
    if not samples:
        raise ValueError("no samples to summarize")
    ordered = sorted(samples)
    count = len(ordered)
    mean = sum(ordered) / count
    variance = sum((value - mean) ** 2 for value in ordered) / count
    return LatencySummary(
        count=count,
        mean=mean,
        p50=percentile(ordered, 0.50),
        p95=percentile(ordered, 0.95),
        p99=percentile(ordered, 0.99),
        p999=percentile(ordered, 0.999),
        minimum=ordered[0],
        maximum=ordered[-1],
        stddev=math.sqrt(variance),
    )


def confidence_interval_99(samples: list[float]) -> tuple[float, float]:
    """99% CI for the mean (normal approximation, as the paper reports)."""
    if len(samples) < 2:
        raise ValueError("need at least two samples")
    summary = summarize(samples)
    half_width = 2.576 * summary.stddev / math.sqrt(len(samples))
    return summary.mean - half_width, summary.mean + half_width


class LatencyRecorder:
    """Collects (completion_time, latency) samples, optionally keyed by group."""

    def __init__(self) -> None:
        self._samples: dict[str, list[tuple[float, float]]] = defaultdict(list)

    def record(self, completion_time: float, latency: float, group: str = "") -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self._samples[group].append((completion_time, latency))

    def groups(self) -> list[str]:
        return sorted(self._samples)

    def count(self, group: str = "") -> int:
        return len(self._samples[group])

    def latencies(self, group: str = "") -> list[float]:
        return [latency for _, latency in self._samples[group]]

    def samples_since(
        self, index: int, group: str = ""
    ) -> list[tuple[float, float]]:
        """(completion_time, latency) samples recorded at position >= index.

        The streaming accessor: a live consumer remembers ``count(group)``
        after each drain and pays only for what arrived since — not a full
        copy of the history like :meth:`latencies`.
        """
        return self._samples[group][index:]

    def all_latencies(self) -> list[float]:
        return [
            latency
            for samples in self._samples.values()
            for _, latency in samples
        ]

    def summary(self, group: str = "") -> LatencySummary:
        return summarize(self.latencies(group))

    def window_latencies(
        self, start: float, end: float = math.inf, group: str = ""
    ) -> list[float]:
        """Latencies of requests that *completed* within ``[start, end)``."""
        return [
            latency
            for completion_time, latency in self._samples[group]
            if start <= completion_time < end
        ]

    def overall_summary(self) -> LatencySummary:
        return summarize(self.all_latencies())

    def cdf(self, group: str = "", points: int = 200) -> list[tuple[float, float]]:
        """(latency, fraction <= latency) pairs — Fig 10's left column."""
        ordered = sorted(self.latencies(group))
        if not ordered:
            return []
        step = max(1, len(ordered) // points)
        out = []
        for index in range(0, len(ordered), step):
            out.append((ordered[index], (index + 1) / len(ordered)))
        # Guarantee full coverage (the sampled stride can stop short of the
        # last sample) without duplicating the final point when the stride
        # already landed on it.
        final = (ordered[-1], 1.0)
        if out[-1] != final:
            out.append(final)
        return out

    def throughput_series(
        self, bucket: float = 1.0, group: str = "", until: Optional[float] = None
    ) -> list[tuple[float, float]]:
        """Completed requests/second per time bucket — Figs 9/11/12."""
        samples = self._samples[group]
        if not samples:
            return []
        horizon = until if until is not None else max(t for t, _ in samples)
        buckets = int(math.ceil(horizon / bucket)) + 1
        counts = [0] * buckets
        for completion_time, _ in samples:
            index = int(completion_time / bucket)
            if index < buckets:
                counts[index] += 1
        return [(index * bucket, counts[index] / bucket) for index in range(buckets)]

    def latency_series(
        self, bucket: float = 1.0, group: str = ""
    ) -> list[tuple[float, float]]:
        """Mean latency per time bucket — Fig 10 middle column, Fig 11/12 (a)."""
        samples = self._samples[group]
        if not samples:
            return []
        sums: dict[int, float] = defaultdict(float)
        counts: dict[int, int] = defaultdict(int)
        for completion_time, latency in samples:
            index = int(completion_time / bucket)
            sums[index] += latency
            counts[index] += 1
        return [
            (index * bucket, sums[index] / counts[index]) for index in sorted(sums)
        ]


def percentile_cells_ms(
    recorder: "LatencyRecorder",
    group: str = "",
    which: tuple[str, ...] = ("p50", "p99", "p999"),
) -> tuple[float, ...]:
    """Selected percentiles in milliseconds, NaN-filled when empty.

    The one table-cell helper shared by the experiment report builders
    (previously each kept its own copy): routes through :func:`summarize`
    so every report quotes identical percentile math.
    """
    if recorder.count(group) == 0:
        return (float("nan"),) * len(which)
    summary = recorder.summary(group)
    values = summary.as_dict()
    return tuple(values[name] * 1e3 for name in which)


def window_percentile_cells_ms(
    recorder: "LatencyRecorder",
    start: float,
    end: float = math.inf,
    group: str = "",
    which: tuple[str, ...] = ("p99", "p999"),
) -> tuple[float, ...]:
    """Percentiles (ms) over a completion-time window, NaN-filled when empty.

    The recovery report's "p99 during vs after recovery" cells: same
    percentile math as :func:`percentile_cells_ms`, restricted to requests
    that completed inside ``[start, end)``.
    """
    samples = recorder.window_latencies(start, end, group)
    if not samples:
        return (float("nan"),) * len(which)
    values = summarize(samples).as_dict()
    return tuple(values[name] * 1e3 for name in which)


class Counter:
    """A named monotonic counter set (drops, retries, scale events, ...)."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = defaultdict(int)

    def incr(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)


class SlidingWindowRate:
    """Request rate over a sliding window (autoscaler + load balancer input)."""

    def __init__(self, window: float = 10.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._events: list[float] = []

    def observe(self, now: float) -> None:
        insort(self._events, now)

    def rate(self, now: float) -> float:
        """Events per second over the *closed-left* window [now-window, now].

        An event observed at exactly ``now - window`` still counts (eviction
        uses ``bisect_left``, matching ``observe``'s inclusive semantics);
        only strictly older events are dropped. Pruning therefore removes
        nothing a later call at the same ``now`` would count, so back-to-back
        calls at the same ``now`` are idempotent.
        """
        cutoff = now - self.window
        start = bisect_left(self._events, cutoff)
        if start:
            del self._events[:start]
        return len(self._events) / self.window
