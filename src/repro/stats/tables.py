"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table (for EXPERIMENTS.md and bench output)."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def ms(seconds: float) -> float:
    """Seconds -> milliseconds (presentation helper)."""
    return seconds * 1e3


def pct(fraction: float) -> float:
    return fraction * 100.0
