"""Measurement: latency recorders, summaries, CDFs, time series, tables."""

from .recorder import (
    Counter,
    LatencyRecorder,
    LatencySummary,
    SlidingWindowRate,
    confidence_interval_99,
    percentile,
    percentile_cells_ms,
    summarize,
    window_percentile_cells_ms,
)
from .export import read_json, series_to_rows, write_csv, write_json
from .tables import format_table, ms, pct
from .tracing import (
    Segment,
    overhead_time,
    segments,
    service_time,
    span_waterfall,
    spans_to_timeline,
    waterfall,
)

__all__ = [
    "Counter",
    "LatencyRecorder",
    "LatencySummary",
    "SlidingWindowRate",
    "confidence_interval_99",
    "format_table",
    "read_json",
    "series_to_rows",
    "write_csv",
    "write_json",
    "ms",
    "pct",
    "percentile",
    "percentile_cells_ms",
    "summarize",
    "window_percentile_cells_ms",
    "Segment",
    "overhead_time",
    "segments",
    "service_time",
    "span_waterfall",
    "spans_to_timeline",
    "waterfall",
]
