"""Result export: experiment outputs to JSON and CSV artifacts.

Experiment runners return plain data; these helpers persist them so runs
can be compared across calibrations and plotted outside the repo.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Iterable, Sequence


def _jsonable(value):
    if is_dataclass(value) and not isinstance(value, type):
        return {key: _jsonable(item) for key, item in asdict(value).items()}
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return value.hex()
    return repr(value)


def write_json(path: str | Path, payload: object, indent: int = 2) -> Path:
    """Serialize any experiment result (dataclasses included) to JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(_jsonable(payload), indent=indent, sort_keys=True))
    return target


def read_json(path: str | Path) -> object:
    return json.loads(Path(path).read_text())


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> Path:
    """Write a plotting-ready CSV (one table/figure series per file)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
    return target


def series_to_rows(series: Iterable[tuple]) -> list[list]:
    return [list(point) for point in series]
