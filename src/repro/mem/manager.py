"""The shared memory manager: one DPDK primary process per chain (§3.4).

Startup flow from Fig. 6: the SPRIGHT controller starts a manager dedicated
to the chain (①); the manager initializes the chain's private pool under a
unique file prefix (②); the gateway and functions later attach as secondary
processes by presenting that prefix.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import Optional

from .pool import PoolRegistry, SharedMemoryPool
from .rings import RteRing


@dataclass
class ChainMemory:
    """Everything a chain's security domain owns in memory."""

    chain_name: str
    file_prefix: str
    pool: SharedMemoryPool
    rings: dict[str, RteRing] = field(default_factory=dict)


class SharedMemoryManager:
    """Privileged primary process managing one chain's memory resources."""

    def __init__(self, registry: PoolRegistry, chain_name: str) -> None:
        self.registry = registry
        self.chain_name = chain_name
        # The prefix doubles as the attach capability; make it unguessable.
        self.file_prefix = f"{chain_name}-{secrets.token_hex(8)}"
        self._chain_memory: Optional[ChainMemory] = None

    def initialize(
        self,
        buffer_size: int = 8192,
        capacity: int = 4096,
        use_hugepages: bool = True,
    ) -> ChainMemory:
        """Create the chain's private pool (rte_mempool_create)."""
        if self._chain_memory is not None:
            raise RuntimeError(f"chain {self.chain_name!r} memory already initialized")
        pool = self.registry.create(
            name=f"pool-{self.chain_name}",
            file_prefix=self.file_prefix,
            buffer_size=buffer_size,
            capacity=capacity,
            use_hugepages=use_hugepages,
        )
        self._chain_memory = ChainMemory(
            chain_name=self.chain_name, file_prefix=self.file_prefix, pool=pool
        )
        return self._chain_memory

    @property
    def memory(self) -> ChainMemory:
        if self._chain_memory is None:
            raise RuntimeError(f"chain {self.chain_name!r} memory not initialized")
        return self._chain_memory

    def create_ring(self, owner: str, size: int = 1024, flags: int = 0) -> RteRing:
        """Assign an RTE ring to a gateway/function (D-SPRIGHT startup)."""
        memory = self.memory
        if owner in memory.rings:
            raise RuntimeError(f"{owner!r} already owns a ring in {self.chain_name!r}")
        ring = RteRing(name=f"ring-{self.chain_name}-{owner}", size=size, flags=flags)
        memory.rings[owner] = ring
        return ring

    def attach(self, file_prefix: str) -> SharedMemoryPool:
        """Secondary-process attach; wrong prefix raises IsolationError."""
        return self.registry.attach(self.memory.pool.name, file_prefix)

    def teardown(self) -> None:
        """Destroy the chain's pool (chain deletion).

        If a sanitizer watches the pool, any buffer still live at this point
        is reported as a leak (with its allocation site) by the registry's
        ``destroy`` before the pool vanishes.
        """
        if self._chain_memory is None:
            return
        self.registry.destroy(self._chain_memory.pool.name)
        self._chain_memory = None
