"""Shared memory substrate: pools, descriptors, RTE rings, chain managers."""

from .descriptor import (
    DESCRIPTOR_SIZE,
    DESCRIPTOR_VERSION,
    DescriptorError,
    PacketDescriptor,
)
from .manager import ChainMemory, SharedMemoryManager
from .pool import (
    BufferHandle,
    HUGEPAGE_SIZE,
    IsolationError,
    PoolError,
    PoolRegistry,
    PoolStats,
    SharedMemoryPool,
)
from .rings import PollingConsumer, RING_F_SC_DEQ, RING_F_SP_ENQ, RingError, RteRing
from .scavenger import ShmScavenger
from .sanitizer import (
    PoolSanitizer,
    SanitizerError,
    Violation,
    ViolationKind,
    default_sanitize,
    set_default_sanitize,
)

__all__ = [
    "BufferHandle",
    "ChainMemory",
    "DESCRIPTOR_SIZE",
    "DESCRIPTOR_VERSION",
    "DescriptorError",
    "HUGEPAGE_SIZE",
    "IsolationError",
    "PacketDescriptor",
    "PollingConsumer",
    "PoolError",
    "PoolRegistry",
    "PoolSanitizer",
    "PoolStats",
    "RING_F_SC_DEQ",
    "RING_F_SP_ENQ",
    "RingError",
    "RteRing",
    "SanitizerError",
    "SharedMemoryManager",
    "SharedMemoryPool",
    "ShmScavenger",
    "Violation",
    "ViolationKind",
    "default_sanitize",
    "set_default_sanitize",
]
