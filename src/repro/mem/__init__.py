"""Shared memory substrate: pools, descriptors, RTE rings, chain managers."""

from .descriptor import DESCRIPTOR_SIZE, DescriptorError, PacketDescriptor
from .manager import ChainMemory, SharedMemoryManager
from .pool import (
    BufferHandle,
    HUGEPAGE_SIZE,
    IsolationError,
    PoolError,
    PoolRegistry,
    PoolStats,
    SharedMemoryPool,
)
from .rings import PollingConsumer, RING_F_SC_DEQ, RING_F_SP_ENQ, RingError, RteRing

__all__ = [
    "BufferHandle",
    "ChainMemory",
    "DESCRIPTOR_SIZE",
    "DescriptorError",
    "HUGEPAGE_SIZE",
    "IsolationError",
    "PacketDescriptor",
    "PollingConsumer",
    "PoolError",
    "PoolRegistry",
    "PoolStats",
    "RING_F_SC_DEQ",
    "RING_F_SP_ENQ",
    "RingError",
    "RteRing",
    "SharedMemoryManager",
    "SharedMemoryPool",
]
