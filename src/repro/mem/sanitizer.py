"""Generation-tagged memory sanitizer for the shared-memory dataplane.

ASan/KASAN in spirit, for our hugepage pool: every buffer slot carries a
monotonically increasing *generation* that :meth:`SharedMemoryPool.alloc`
bumps, and every access (``read``/``write``/``free``/descriptor resolution)
verifies ``(offset, generation)`` identity. That closes the classic ABA
hole where a freed :class:`BufferHandle` whose slot was re-allocated to
another request still passes an offset-only liveness check and silently
reads or clobbers the new owner's payload.

On top of the pool-level identity checks (always on — they are the
correctness fix, not an opt-in), :class:`PoolSanitizer` adds the tooling
layer: live-allocation tracking with allocation-site labels, violation
counters surfaced through :class:`repro.stats.Counter`, and chain-teardown
leak detection. Enable it per chain via ``SprightParams(sanitize=True)``,
globally via :func:`set_default_sanitize` (what the CLI's ``--sanitize``
flag does), or attach it to any pool directly with
:meth:`SharedMemoryPool.attach_sanitizer`.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..stats import Counter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pool import BufferHandle, SharedMemoryPool


class ViolationKind(enum.Enum):
    """The memory-safety violation classes the sanitizer distinguishes."""

    USE_AFTER_FREE = "use_after_free"
    DOUBLE_FREE = "double_free"
    STALE_FREE = "stale_free"
    CROSS_POOL = "cross_pool"
    RANGE_STRADDLE = "range_straddle"
    LEAK = "leak"

    @property
    def counter_name(self) -> str:
        return f"sanitizer/{self.value}"


class SanitizerError(Exception):
    """Raised in strict mode when a violation is recorded."""


@dataclass
class AllocationRecord:
    """One live buffer as the sanitizer sees it."""

    pool_name: str
    offset: int
    generation: int
    site: str
    alloc_index: int


@dataclass(frozen=True)
class Violation:
    """One detected memory-safety violation."""

    kind: ViolationKind
    pool_name: str
    detail: str
    site: str = ""

    def render(self) -> str:
        where = f" [site: {self.site}]" if self.site else ""
        return f"{self.kind.value}: pool {self.pool_name!r}: {self.detail}{where}"


# -- process-wide default (what the CLI's --sanitize toggles) -----------------
def _env_default(value: Optional[str]) -> bool:
    """Parse the SPRIGHT_REPRO_SANITIZE env var (CI runs suites with it set)."""
    return (value or "").strip().lower() not in ("", "0", "false", "no")


_default_sanitize = _env_default(os.environ.get("SPRIGHT_REPRO_SANITIZE"))


def set_default_sanitize(enabled: bool) -> None:
    """Turn checked mode on/off for every chain built afterwards."""
    global _default_sanitize
    _default_sanitize = bool(enabled)


def default_sanitize() -> bool:
    return _default_sanitize


class PoolSanitizer:
    """Tracks live allocations and records memory-safety violations.

    One sanitizer may watch several pools (e.g. every pool on a node),
    keying live allocations by ``(pool_name, offset)``. Violations are
    counted into ``counter`` under ``sanitizer/<kind>`` names so experiment
    drivers can assert zero violations after a checked run.
    """

    def __init__(self, counter: Optional[Counter] = None, strict: bool = False) -> None:
        self.counter = counter if counter is not None else Counter()
        self.strict = strict
        self.violations: list[Violation] = []
        self._live: dict[tuple[str, int], AllocationRecord] = {}
        self._reclaimed: list[AllocationRecord] = []
        self._alloc_sequence = 0

    # -- pool hooks -----------------------------------------------------------
    def on_alloc(self, pool: "SharedMemoryPool", handle: "BufferHandle", site: str) -> None:
        self._alloc_sequence += 1
        self._live[(pool.name, handle.offset)] = AllocationRecord(
            pool_name=pool.name,
            offset=handle.offset,
            generation=handle.generation,
            site=site or "<unknown>",
            alloc_index=self._alloc_sequence,
        )

    def on_free(self, pool: "SharedMemoryPool", handle: "BufferHandle") -> None:
        self._live.pop((pool.name, handle.offset), None)

    def on_reclaim(
        self, pool: "SharedMemoryPool", handle: "BufferHandle", site: str
    ) -> None:
        """An orphaned buffer was force-freed by the scavenger.

        Not a violation — reclamation is the *remedy* for the leak a crashed
        owner would otherwise cause — but it is counted separately
        (``sanitizer/orphan_reclaims``) so experiments can cross-check the
        scavenger's own ``recovery/orphans_reclaimed`` accounting against
        what the sanitizer observed leaving the live set.
        """
        record = self._live.pop((pool.name, handle.offset), None)
        self._reclaimed.append(
            AllocationRecord(
                pool_name=pool.name,
                offset=handle.offset,
                generation=handle.generation,
                site=site or (record.site if record is not None else "<untracked>"),
                alloc_index=record.alloc_index if record is not None else 0,
            )
        )
        self.counter.incr("sanitizer/orphan_reclaims")

    def record(
        self, kind: ViolationKind, pool_name: str, detail: str, site: str = ""
    ) -> Violation:
        """Count one violation; raise in strict mode."""
        violation = Violation(kind=kind, pool_name=pool_name, detail=detail, site=site)
        self.violations.append(violation)
        self.counter.incr(kind.counter_name)
        if self.strict:
            raise SanitizerError(violation.render())
        return violation

    # -- teardown / reporting ---------------------------------------------------
    def site_of(self, pool_name: str, offset: int) -> str:
        record = self._live.get((pool_name, offset))
        return record.site if record is not None else ""

    def check_teardown(self, pool: "SharedMemoryPool") -> list[Violation]:
        """Report every buffer still live when its pool is destroyed."""
        leaked = []
        for handle in pool.live_handles():
            record = self._live.pop((pool.name, handle.offset), None)
            site = record.site if record is not None else "<untracked>"
            leaked.append(
                self.record(
                    ViolationKind.LEAK,
                    pool.name,
                    f"buffer at offset {handle.offset} (generation "
                    f"{handle.generation}, {handle.size} bytes) still live at "
                    f"pool teardown",
                    site=site,
                )
            )
        return leaked

    def leaks(self) -> list[Violation]:
        return [v for v in self.violations if v.kind is ViolationKind.LEAK]

    @property
    def live_count(self) -> int:
        return len(self._live)

    @property
    def orphan_reclaims(self) -> int:
        """How many orphaned buffers the scavenger pulled back."""
        return len(self._reclaimed)

    @property
    def total_violations(self) -> int:
        return len(self.violations)

    def counts(self) -> dict[str, int]:
        """Per-kind violation counts (zero-suppressed)."""
        out: dict[str, int] = {}
        for violation in self.violations:
            out[violation.kind.value] = out.get(violation.kind.value, 0) + 1
        return out

    def report(self) -> str:
        """Plain-text summary, one line per violation."""
        if not self.violations:
            return "sanitizer: 0 violations"
        lines = [f"sanitizer: {len(self.violations)} violation(s)"]
        lines.extend(f"  {violation.render()}" for violation in self.violations)
        return "\n".join(lines)
