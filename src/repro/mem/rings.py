"""DPDK-style RTE rings: the polling-based descriptor channel of D-SPRIGHT.

A bounded multi-producer/multi-consumer ring. Producers enqueue without
blocking (full ring -> drop/backpressure decision is the caller's);
consumers either poll (`PollingConsumer`, burning a dedicated core like
DPDK's poll-mode drivers) or block on the ring's event (used in tests).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from ..simcore import Event, Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore import CpuSet, DedicatedCore, Environment


class RingError(Exception):
    """Invalid ring construction or flag combinations."""


# Flags mirroring rte_ring_create(); 0 = MP/MC, per the paper's Appendix A.
RING_F_SP_ENQ = 0x0001
RING_F_SC_DEQ = 0x0002


class RteRing:
    """A bounded FIFO of descriptors with DPDK-like counters."""

    def __init__(self, name: str, size: int = 1024, flags: int = 0) -> None:
        if size <= 0 or (size & (size - 1)) != 0:
            raise RingError("ring size must be a positive power of two")
        self.name = name
        self.size = size
        self.flags = flags
        self._items: deque[object] = deque()
        self.enqueued = 0
        self.dequeued = 0
        self.drops = 0
        self.forced_drops = 0
        self._waiters: list[Event] = []
        # Fault injection: called with the ring name before each enqueue;
        # returning True makes the enqueue behave as if the ring were full.
        self.fault_hook: Optional[Callable[[str], bool]] = None

    @property
    def single_producer(self) -> bool:
        return bool(self.flags & RING_F_SP_ENQ)

    @property
    def single_consumer(self) -> bool:
        return bool(self.flags & RING_F_SC_DEQ)

    @property
    def count(self) -> int:
        return len(self._items)

    @property
    def free_count(self) -> int:
        return self.size - len(self._items)

    def enqueue(self, item: object) -> bool:
        """rte_ring_enqueue: returns False when the ring is full."""
        if self.fault_hook is not None and self.fault_hook(self.name):
            self.drops += 1
            self.forced_drops += 1
            return False
        if len(self._items) >= self.size:
            self.drops += 1
            return False
        self._items.append(item)
        self.enqueued += 1
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()
        return True

    def dequeue(self) -> tuple[bool, Optional[object]]:
        """rte_ring_dequeue: returns (False, None) when empty."""
        if not self._items:
            return False, None
        self.dequeued += 1
        return True, self._items.popleft()

    def dequeue_burst(self, max_items: int) -> list[object]:
        burst: list[object] = []
        while self._items and len(burst) < max_items:
            burst.append(self._items.popleft())
        self.dequeued += len(burst)
        return burst

    def not_empty_event(self, env: "Environment") -> Event:
        """Event that fires at the next enqueue (non-DPDK, test convenience)."""
        event = Event(env)
        if self._items:
            event.succeed()
        else:
            self._waiters.append(event)
        return event


class PollingConsumer:
    """A DPDK poll-mode thread: dedicates a core and spins on rings.

    The defining property reproduced here is that the core is 100% busy
    whether or not traffic flows — exactly the D-SPRIGHT CPU floor the paper
    measures (§3.2.2). Dequeued items are handed to ``handler`` which may be
    a plain callable or a generator function (for handlers that do timed
    work).
    """

    def __init__(
        self,
        env: "Environment",
        cpu: "CpuSet",
        rings: list[RteRing],
        handler: Callable,
        tag: str,
        burst_size: int = 32,
        poll_interval: float = 1e-6,
    ) -> None:
        self.env = env
        self.cpu = cpu
        self.rings = rings
        self.handler = handler
        self.tag = tag
        self.burst_size = burst_size
        self.poll_interval = poll_interval
        self.items_processed = 0
        self.empty_polls = 0
        self._stopped = False
        self.core: "DedicatedCore" = cpu.dedicate(tag=tag)
        self.process = env.process(self._run(), name=f"poll-{tag}")

    def stop(self) -> None:
        """Release the core and end the poll loop."""
        if self._stopped:
            return
        self._stopped = True
        self.core.release()
        if self.process.is_alive:
            self.process.interrupt(cause="stopped")

    def _run(self):
        from ..simcore import Interrupt

        # The spin burns the dedicated core unconditionally (charged by the
        # dedication above). We do not simulate each empty iteration as an
        # event — that would be artificial event-loop load; instead the loop
        # sleeps on "ring became non-empty", which costs the consumer nothing
        # and preserves the near-zero dequeue latency of poll mode.
        while not self._stopped:
            did_work = False
            for ring in self.rings:
                burst = ring.dequeue_burst(self.burst_size)
                for item in burst:
                    did_work = True
                    self.items_processed += 1
                    outcome = self.handler(item)
                    if hasattr(outcome, "send"):  # generator handler
                        yield self.env.process(outcome)
            if not did_work:
                self.empty_polls += 1
                try:
                    yield self.env.any_of(
                        [ring.not_empty_event(self.env) for ring in self.rings]
                    )
                    yield self.env.timeout(self.poll_interval)
                except Interrupt:
                    return
