"""Shared-memory orphan scavenger: per-owner handle ledger + reclamation.

When a pod crashes, every pool buffer whose descriptor was parked in its
inbox/ring — or being served when the crash hit — would stay allocated
forever: the dead worker never reaches the ``free`` that the normal message
lifecycle performs, and a long crash-storm run exhausts the pool
(``PoolError: pool exhausted``) even though the node has plenty of memory.

The scavenger closes that leak. The chain runtime *assigns* each buffer to
the instance currently responsible for it (the pod a descriptor was just
delivered to, or the gateway once the response is on its way back) and
*releases* the assignment when the buffer is freed through the normal path.
On crash, :meth:`ShmScavenger.reclaim` force-frees everything still assigned
to the dead instance via :meth:`SharedMemoryPool.reclaim`, which bumps the
slot generation — so any stale descriptor the dead pod already emitted
faults cleanly at the ``(offset, generation)`` identity check (PR 1's ABA
machinery) instead of aliasing the slot's next occupant.

The ledger is plain bookkeeping: no RNG draws, no simulation events, and no
counters until an actual reclamation happens, so fault-free runs stay
byte-identical whether or not a scavenger is attached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..stats import Counter
    from .pool import BufferHandle, SharedMemoryPool


class ShmScavenger:
    """Tracks which instance owns each live buffer; reclaims on crash.

    ``token`` is an opaque per-buffer payload (the chain runtime passes its
    side-band message) handed back by :meth:`reclaim` so the caller can fail
    waiting requesters without the mem layer knowing about dataplanes.
    """

    def __init__(
        self, pool: "SharedMemoryPool", counter: Optional["Counter"] = None
    ) -> None:
        self.pool = pool
        self.counter = counter
        # id(handle) -> (owner, handle, token); id() identity matches the
        # pool's own handle-identity liveness rule.
        self._entries: dict[int, tuple[int, "BufferHandle", Any]] = {}
        self._by_owner: dict[int, dict[int, None]] = {}
        self.orphans_reclaimed = 0

    # -- ledger ----------------------------------------------------------------
    def assign(
        self, owner_id: int, handle: "BufferHandle", token: Any = None
    ) -> None:
        """Record that ``owner_id`` is now responsible for ``handle``.

        Re-assigning moves the buffer between owners (the descriptor hopped
        to the next function); the ledger holds at most one owner per buffer.
        """
        key = id(handle)
        previous = self._entries.get(key)
        if previous is not None:
            self._forget(key, previous[0])
        self._entries[key] = (owner_id, handle, token)
        self._by_owner.setdefault(owner_id, {})[key] = None

    def release(self, handle: "BufferHandle") -> None:
        """Drop the assignment (the buffer was freed through the normal path)."""
        key = id(handle)
        entry = self._entries.get(key)
        if entry is not None:
            self._forget(key, entry[0])

    def _forget(self, key: int, owner_id: int) -> None:
        self._entries.pop(key, None)
        owned = self._by_owner.get(owner_id)
        if owned is not None:
            owned.pop(key, None)
            if not owned:
                del self._by_owner[owner_id]

    def owned_count(self, owner_id: int) -> int:
        return len(self._by_owner.get(owner_id, ()))

    @property
    def tracked_count(self) -> int:
        return len(self._entries)

    # -- crash path -------------------------------------------------------------
    def reclaim(
        self, owner_id: int, site: str = ""
    ) -> list[tuple["BufferHandle", Any]]:
        """Force-free every buffer still assigned to a dead instance.

        Returns the ``(handle, token)`` pairs actually reclaimed (buffers the
        normal failure path already freed are skipped — reclamation is
        idempotent) and counts them under ``recovery/orphans_reclaimed``.
        """
        keys = list(self._by_owner.get(owner_id, ()))
        reclaimed: list[tuple["BufferHandle", Any]] = []
        for key in keys:
            owner, handle, token = self._entries[key]
            self._forget(key, owner)
            if self.pool.reclaim(handle, site=site):
                reclaimed.append((handle, token))
        if reclaimed:
            self.orphans_reclaimed += len(reclaimed)
            if self.counter is not None:
                self.counter.incr("recovery/orphans_reclaimed", len(reclaimed))
        return reclaimed
