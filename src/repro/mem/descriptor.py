"""The 24-byte packet descriptor passed between functions (§3.2.1).

The descriptor is the *only* thing that crosses sockets/rings in SPRIGHT;
payloads stay put in shared memory. Wire layout v2 (little-endian)::

    [ 0: 1]  version    (u8)   wire-format version, currently 2
    [ 1: 4]  reserved           must be zero
    [ 4: 8]  next_fn    (u32)  instance ID of the next function
    [ 8:16]  shm_offset (u64)  payload location in the chain's pool
    [16:20]  length     (u32)  payload length in bytes
    [20:24]  generation (u32)  allocation generation of the target buffer

The ``generation`` field is the ABA/use-after-free defence: the pool bumps
a per-slot generation on every ``alloc``, and descriptor resolution verifies
``(shm_offset, generation)`` identity, so a stale descriptor to a recycled
buffer is rejected instead of silently aliasing the new owner's payload.
(v1 was the paper's 16-byte layout without the version or generation.)
"""

from __future__ import annotations

from dataclasses import dataclass

DESCRIPTOR_SIZE = 24
DESCRIPTOR_VERSION = 2


class DescriptorError(Exception):
    """Malformed descriptor bytes."""


@dataclass(frozen=True)
class PacketDescriptor:
    """A shared-memory payload reference addressed to a function instance."""

    next_fn: int
    shm_offset: int
    length: int
    generation: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.next_fn < 2**32:
            raise DescriptorError(f"next_fn {self.next_fn} out of u32 range")
        if not 0 <= self.shm_offset < 2**64:
            raise DescriptorError(f"shm_offset {self.shm_offset} out of u64 range")
        if not 0 <= self.length < 2**32:
            raise DescriptorError(f"length {self.length} out of u32 range")
        if not 0 <= self.generation < 2**32:
            raise DescriptorError(f"generation {self.generation} out of u32 range")

    def pack(self) -> bytes:
        """Serialize to the 24-byte v2 wire form."""
        return (
            DESCRIPTOR_VERSION.to_bytes(1, "little")
            + b"\x00" * 3
            + self.next_fn.to_bytes(4, "little")
            + self.shm_offset.to_bytes(8, "little")
            + self.length.to_bytes(4, "little")
            + self.generation.to_bytes(4, "little")
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "PacketDescriptor":
        if len(raw) != DESCRIPTOR_SIZE:
            raise DescriptorError(
                f"descriptor must be exactly {DESCRIPTOR_SIZE} bytes, got {len(raw)}"
            )
        version = raw[0]
        if version != DESCRIPTOR_VERSION:
            raise DescriptorError(
                f"unsupported descriptor version {version} "
                f"(expected {DESCRIPTOR_VERSION})"
            )
        return cls(
            next_fn=int.from_bytes(raw[4:8], "little"),
            shm_offset=int.from_bytes(raw[8:16], "little"),
            length=int.from_bytes(raw[16:20], "little"),
            generation=int.from_bytes(raw[20:24], "little"),
        )

    def addressed_to(self, next_fn: int) -> "PacketDescriptor":
        """A copy of this descriptor re-addressed to another instance."""
        return PacketDescriptor(
            next_fn=next_fn,
            shm_offset=self.shm_offset,
            length=self.length,
            generation=self.generation,
        )
