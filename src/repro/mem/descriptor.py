"""The 16-byte packet descriptor passed between functions (§3.2.1).

The descriptor is the *only* thing that crosses sockets/rings in SPRIGHT;
payloads stay put in shared memory. Layout (little-endian)::

    [ 0: 4]  next_fn    (u32)  instance ID of the next function
    [ 4:12]  shm_offset (u64)  payload location in the chain's pool
    [12:16]  length     (u32)  payload length in bytes
"""

from __future__ import annotations

from dataclasses import dataclass

DESCRIPTOR_SIZE = 16


class DescriptorError(Exception):
    """Malformed descriptor bytes."""


@dataclass(frozen=True)
class PacketDescriptor:
    """A shared-memory payload reference addressed to a function instance."""

    next_fn: int
    shm_offset: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.next_fn < 2**32:
            raise DescriptorError(f"next_fn {self.next_fn} out of u32 range")
        if not 0 <= self.shm_offset < 2**64:
            raise DescriptorError(f"shm_offset {self.shm_offset} out of u64 range")
        if not 0 <= self.length < 2**32:
            raise DescriptorError(f"length {self.length} out of u32 range")

    def pack(self) -> bytes:
        """Serialize to the 16-byte wire form."""
        return (
            self.next_fn.to_bytes(4, "little")
            + self.shm_offset.to_bytes(8, "little")
            + self.length.to_bytes(4, "little")
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "PacketDescriptor":
        if len(raw) != DESCRIPTOR_SIZE:
            raise DescriptorError(
                f"descriptor must be exactly {DESCRIPTOR_SIZE} bytes, got {len(raw)}"
            )
        return cls(
            next_fn=int.from_bytes(raw[0:4], "little"),
            shm_offset=int.from_bytes(raw[4:12], "little"),
            length=int.from_bytes(raw[12:16], "little"),
        )

    def addressed_to(self, next_fn: int) -> "PacketDescriptor":
        """A copy of this descriptor re-addressed to another instance."""
        return PacketDescriptor(
            next_fn=next_fn, shm_offset=self.shm_offset, length=self.length
        )
