"""HugePage-backed shared memory pools with file-prefix isolation (§3.2.1, §3.4).

One pool per function chain. The pool stores real bytes: the gateway writes
the request payload once, functions read/write in place through offsets, and
nothing is copied between functions — the zero-copy property is structural,
and tests assert it by checking buffer identity and pool copy counters.

Isolation follows DPDK's multi-process model: the pool is created by a
privileged *primary* (the shared memory manager) under a unique file prefix;
*secondaries* (gateway, functions) can attach only if they present the same
prefix. Attaching with a wrong prefix raises, which is the cross-chain
security boundary of §3.4.

Memory safety: every buffer slot carries a monotonically increasing
*generation* that ``alloc`` bumps. Liveness checks verify handle *identity*
(``self._in_use.get(offset) is handle``) and descriptor resolution verifies
``(offset, generation)``, so a stale handle or descriptor to a recycled slot
raises instead of silently aliasing the new owner's payload (the classic ABA
use-after-free). An optional :class:`repro.mem.sanitizer.PoolSanitizer`
additionally counts violations and tracks allocation sites for leak reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .descriptor import PacketDescriptor
from .sanitizer import ViolationKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .sanitizer import PoolSanitizer

HUGEPAGE_SIZE = 2 * 1024 * 1024  # 2 MiB hugepages


class PoolError(Exception):
    """Allocation/exhaustion/ownership errors."""


class IsolationError(PoolError):
    """Attempt to cross a chain's shared-memory security boundary."""


@dataclass
class BufferHandle:
    """A reference to one buffer in a pool (what descriptors point at)."""

    pool_name: str
    offset: int
    size: int
    generation: int = 0
    in_use: bool = True


@dataclass
class PoolStats:
    """Counters proving (or disproving) the zero-copy property."""

    allocs: int = 0
    frees: int = 0
    reclaims: int = 0
    writes: int = 0
    reads: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    alloc_failures: int = 0
    peak_in_use: int = 0


class SharedMemoryPool:
    """Fixed-size-buffer pool backed by (simulated) hugepages."""

    def __init__(
        self,
        name: str,
        file_prefix: str,
        buffer_size: int = 8192,
        capacity: int = 1024,
        use_hugepages: bool = True,
    ) -> None:
        if buffer_size <= 0 or capacity <= 0:
            raise PoolError("buffer_size and capacity must be positive")
        self.name = name
        self.file_prefix = file_prefix
        self.buffer_size = buffer_size
        self.capacity = capacity
        self.use_hugepages = use_hugepages
        self._memory = bytearray(buffer_size * capacity)
        self._free_offsets = [index * buffer_size for index in range(capacity)]
        self._in_use: dict[int, BufferHandle] = {}
        # Per-slot allocation generation, bumped on every alloc of that slot.
        self._slot_generation = [0] * capacity
        self.sanitizer: Optional["PoolSanitizer"] = None
        self.stats = PoolStats()

    # -- geometry ------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return len(self._memory)

    @property
    def hugepages_backing(self) -> int:
        """Number of hugepages this pool spans (1 minimum)."""
        return max(1, -(-self.total_bytes // HUGEPAGE_SIZE))

    @property
    def in_use_count(self) -> int:
        return len(self._in_use)

    @property
    def free_count(self) -> int:
        return len(self._free_offsets)

    def live_handles(self) -> list[BufferHandle]:
        """Snapshot of every currently allocated buffer (leak detection)."""
        return list(self._in_use.values())

    # -- sanitizer wiring ------------------------------------------------------
    def attach_sanitizer(self, sanitizer: "PoolSanitizer") -> None:
        """Put this pool under sanitizer observation (checked mode)."""
        self.sanitizer = sanitizer

    def _violation(self, kind, detail: str, site: str = "") -> PoolError:
        """Record (if sanitized) and build the error for one violation."""
        if self.sanitizer is not None:
            self.sanitizer.record(kind, self.name, detail, site=site)
        return PoolError(f"pool {self.name!r}: {detail}")

    # -- allocation -----------------------------------------------------------
    def alloc(self, site: str = "") -> BufferHandle:
        """Take one buffer from the pool (rte_mempool_get equivalent).

        ``site`` labels the allocation for the sanitizer's leak reports
        (e.g. ``"sspright/gw/chain"``).
        """
        if not self._free_offsets:
            self.stats.alloc_failures += 1
            raise PoolError(f"pool {self.name!r} exhausted ({self.capacity} buffers)")
        offset = self._free_offsets.pop()
        slot = offset // self.buffer_size
        self._slot_generation[slot] += 1
        handle = BufferHandle(
            pool_name=self.name,
            offset=offset,
            size=0,
            generation=self._slot_generation[slot],
        )
        self._in_use[offset] = handle
        self.stats.allocs += 1
        self.stats.peak_in_use = max(self.stats.peak_in_use, len(self._in_use))
        if self.sanitizer is not None:
            self.sanitizer.on_alloc(self, handle, site)
        return handle

    def free(self, handle: BufferHandle) -> None:
        if handle.pool_name != self.name:
            raise self._violation(
                ViolationKind.CROSS_POOL,
                f"buffer belongs to pool {handle.pool_name!r}, not {self.name!r}",
            )
        current = self._in_use.get(handle.offset)
        if current is None:
            raise self._violation(
                ViolationKind.DOUBLE_FREE,
                f"double free of buffer at offset {handle.offset}",
            )
        if current is not handle:
            # The slot was recycled: freeing through the stale handle would
            # yank the buffer out from under its new owner (ABA).
            raise self._violation(
                ViolationKind.STALE_FREE,
                f"free through stale handle at offset {handle.offset} "
                f"(handle generation {handle.generation}, live generation "
                f"{current.generation})",
            )
        del self._in_use[handle.offset]
        handle.in_use = False
        self._free_offsets.append(handle.offset)
        self.stats.frees += 1
        if self.sanitizer is not None:
            self.sanitizer.on_free(self, handle)

    def reclaim(self, handle: BufferHandle, site: str = "") -> bool:
        """Force-free an orphaned buffer on behalf of a dead owner.

        The scavenger path: unlike :meth:`free`, reclaiming does not require
        the caller to *be* the owner — the owner crashed.  The slot's
        generation is bumped immediately so any descriptor or handle the dead
        pod already emitted for this buffer faults as a use-after-free at the
        identity check instead of aliasing the slot's next occupant.  Returns
        False when the buffer is already gone (e.g. the in-flight failure
        path released it first), so reclamation is idempotent.
        """
        current = self._in_use.get(handle.offset)
        if current is not handle:
            return False
        del self._in_use[handle.offset]
        handle.in_use = False
        slot = handle.offset // self.buffer_size
        self._slot_generation[slot] += 1
        self._free_offsets.append(handle.offset)
        self.stats.reclaims += 1
        if self.sanitizer is not None:
            self.sanitizer.on_reclaim(self, handle, site)
        return True

    # -- data access ------------------------------------------------------------
    def write(self, handle: BufferHandle, data: bytes) -> None:
        """Write payload into the buffer (the gateway's single copy-in)."""
        self._check_live(handle, op="write")
        if len(data) > self.buffer_size:
            raise PoolError(
                f"payload of {len(data)} bytes exceeds buffer size {self.buffer_size}"
            )
        self._memory[handle.offset : handle.offset + len(data)] = data
        handle.size = len(data)
        self.stats.writes += 1
        self.stats.bytes_written += len(data)

    def read(self, handle: BufferHandle) -> bytes:
        """Read the payload (functions access data in place)."""
        self._check_live(handle, op="read")
        self.stats.reads += 1
        self.stats.bytes_read += handle.size
        return bytes(self._memory[handle.offset : handle.offset + handle.size])

    def read_at(self, offset: int, length: int) -> bytes:
        """Raw offset read (what a descriptor authorizes)."""
        if length < 0:
            raise PoolError(f"negative read length {length}")
        if offset < 0 or offset + length > self.total_bytes:
            raise PoolError(f"read [{offset}, {offset + length}) outside pool")
        self.stats.reads += 1
        self.stats.bytes_read += length
        return bytes(self._memory[offset : offset + length])

    def resolve_descriptor(self, descriptor: PacketDescriptor) -> bytes:
        """Resolve a wire descriptor to payload bytes, verifying identity.

        This is how the S-SPRIGHT SK_MSG and D-SPRIGHT ring receive paths
        read: the descriptor's ``(shm_offset, generation)`` must name the
        *current* allocation of that slot, and its range must stay inside
        one buffer — a stale or corrupt descriptor raises instead of reading
        whatever now lives there.
        """
        current = self._in_use.get(descriptor.shm_offset)
        if current is None:
            raise self._violation(
                ViolationKind.USE_AFTER_FREE,
                f"descriptor to freed buffer at offset {descriptor.shm_offset} "
                f"(generation {descriptor.generation})",
            )
        if descriptor.generation != current.generation:
            site = (
                self.sanitizer.site_of(self.name, descriptor.shm_offset)
                if self.sanitizer is not None
                else ""
            )
            raise self._violation(
                ViolationKind.USE_AFTER_FREE,
                f"stale descriptor generation {descriptor.generation} for "
                f"offset {descriptor.shm_offset} (buffer re-allocated, live "
                f"generation {current.generation})",
                site=site,
            )
        if descriptor.length > self.buffer_size:
            raise self._violation(
                ViolationKind.RANGE_STRADDLE,
                f"descriptor range [{descriptor.shm_offset}, "
                f"{descriptor.shm_offset + descriptor.length}) straddles the "
                f"{self.buffer_size}-byte buffer boundary",
            )
        return self.read_at(descriptor.shm_offset, descriptor.length)

    def handle_for_offset(self, offset: int) -> Optional[BufferHandle]:
        return self._in_use.get(offset)

    def _check_live(self, handle: BufferHandle, op: str = "access") -> None:
        if handle.pool_name != self.name:
            raise self._violation(
                ViolationKind.CROSS_POOL,
                f"buffer belongs to pool {handle.pool_name!r}, not {self.name!r}",
            )
        current = self._in_use.get(handle.offset)
        if current is None:
            raise self._violation(
                ViolationKind.USE_AFTER_FREE,
                f"{op} of freed buffer at offset {handle.offset}",
            )
        if current is not handle or current.generation != handle.generation:
            # Offset-only membership is not liveness: the slot may have been
            # re-allocated to another request since this handle was freed.
            raise self._violation(
                ViolationKind.USE_AFTER_FREE,
                f"{op} through stale handle at offset {handle.offset} "
                f"(handle generation {handle.generation}, live generation "
                f"{current.generation})",
            )


class PoolRegistry:
    """Node-wide registry implementing the DPDK primary/secondary model."""

    def __init__(self) -> None:
        self._pools: dict[str, SharedMemoryPool] = {}

    def create(
        self,
        name: str,
        file_prefix: str,
        buffer_size: int = 8192,
        capacity: int = 1024,
        use_hugepages: bool = True,
    ) -> SharedMemoryPool:
        """Primary-process pool creation (rte_mempool_create)."""
        if name in self._pools:
            raise PoolError(f"pool {name!r} already exists")
        pool = SharedMemoryPool(
            name=name,
            file_prefix=file_prefix,
            buffer_size=buffer_size,
            capacity=capacity,
            use_hugepages=use_hugepages,
        )
        self._pools[name] = pool
        return pool

    def attach(self, name: str, file_prefix: str) -> SharedMemoryPool:
        """Secondary-process attach (rte_memzone_lookup).

        The file prefix is the capability: presenting the wrong one is the
        cross-chain access the security domain must (and does) refuse.
        """
        pool = self._pools.get(name)
        if pool is None:
            raise PoolError(f"no pool named {name!r}")
        if pool.file_prefix != file_prefix:
            raise IsolationError(
                f"prefix {file_prefix!r} does not own pool {name!r} "
                f"(owned by prefix {pool.file_prefix!r})"
            )
        return pool

    def destroy(self, name: str) -> None:
        pool = self._pools.get(name)
        if pool is None:
            raise PoolError(f"no pool named {name!r}")
        # Chain teardown with live buffers is a leak; the sanitizer reports
        # each one with its allocation site instead of dropping it silently.
        if pool.sanitizer is not None:
            pool.sanitizer.check_teardown(pool)
        del self._pools[name]

    def __len__(self) -> int:
        return len(self._pools)
