"""Closed-form oracle for synchronized request cloning under PS.

The model ("Modeling of Request Cloning in Cloud Server Systems using
Processor Sharing", PAPERS.md): every arriving request is cloned to ``d``
processor-sharing servers, the copies carry i.i.d. service requirements,
and the first copy to finish cancels the rest ("cancel-on-first-
completion"). When every server receives every job (the synchronized
``d``-of-``d`` form the lab reproduces), all servers see identical
occupancy at all times, so the whole system is *exactly* equivalent to a
single M/G/1-PS queue whose service requirement is

    S_min = min(S_1, ..., S_d),   S_i i.i.d. copies of the service law.

PS insensitivity then gives the mean response time from the mean alone:

    T(lambda, d) = E[S_min] / (1 - lambda * E[S_min]).

Everything interesting is in how E[S_min] scales with ``d``:

* exponential service: E[S_min] = S / d — cloning keeps helping;
* deterministic service: E[S_min] = S — cloning is pure waste.

The cluster form spreads clone groups over ``n`` servers instead of all of
them; each group then occupies ``d`` servers with S_min worth of work
apiece, so the per-server load is ``rho = lambda * d * E[S_min] / n`` and
the response time trades the min-of-d win against the d-fold load
amplification — that trade-off is what produces a finite optimal ``d``.
"""

from __future__ import annotations

import math

#: Service distributions the oracle has closed forms for.
DISTRIBUTIONS = ("exp", "deterministic")


def expected_min_service(mean: float, d: int, dist: str = "exp") -> float:
    """E[min of ``d`` i.i.d. service times] with the given mean.

    Exponential: the min of d exponentials(rate 1/S) is exponential with
    rate d/S, so E[S_min] = S/d. Deterministic: every copy needs exactly S,
    so the min is S regardless of d.
    """
    if mean < 0:
        raise ValueError("mean service time must be non-negative")
    if d < 1:
        raise ValueError("clone factor d must be >= 1")
    if dist == "exp":
        return mean / d
    if dist == "deterministic":
        return mean
    raise ValueError(f"no closed form for dist {dist!r}; choose from {DISTRIBUTIONS}")


def ps_response_time(lam: float, mean: float, d: int, dist: str = "exp") -> float:
    """Mean response time of the synchronized d-of-d cloning system.

    Exact (not an approximation) for the all-servers form: equivalent
    M/G/1-PS with service S_min. Returns ``inf`` when unstable
    (``lambda * E[S_min] >= 1``).
    """
    if lam < 0:
        raise ValueError("arrival rate must be non-negative")
    smin = expected_min_service(mean, d, dist)
    rho = lam * smin
    if rho >= 1.0:
        return math.inf
    return smin / (1.0 - rho)


def cluster_response_time(
    lam: float, mean: float, d: int, n_servers: int, dist: str = "exp"
) -> float:
    """Mean response time when clone groups are spread over ``n`` servers.

    Balanced-allocation form: each group puts S_min of work on each of its
    ``d`` servers, so per-server utilization is
    ``rho = lambda * d * E[S_min] / n`` and T = E[S_min] / (1 - rho).
    Exact when ``d == n_servers`` (it degenerates to the all-servers form);
    a mean-field approximation otherwise — good enough to rank clone
    factors, which is all :func:`optimal_clone_factor` needs.
    """
    if n_servers < 1:
        raise ValueError("n_servers must be >= 1")
    if d > n_servers:
        raise ValueError("cannot clone to more servers than exist")
    smin = expected_min_service(mean, d, dist)
    rho = lam * d * smin / n_servers
    if rho >= 1.0:
        return math.inf
    return smin / (1.0 - rho)


def optimal_clone_factor(
    lam: float,
    mean: float,
    n_servers: int,
    dist: str = "exp",
    max_d: int | None = None,
) -> tuple[int, float]:
    """(d*, T*) minimizing :func:`cluster_response_time` over 1..max_d.

    For exponential service at low load the min-of-d effect dominates and
    d* grows toward n; as load rises the d-fold amplification bites and d*
    shrinks back to 1. For deterministic service d* is always 1 — the extra
    copies add load and save nothing.
    """
    ceiling = n_servers if max_d is None else min(max_d, n_servers)
    best_d, best_t = 1, cluster_response_time(lam, mean, 1, n_servers, dist)
    for d in range(2, ceiling + 1):
        t = cluster_response_time(lam, mean, d, n_servers, dist)
        if t < best_t:
            best_d, best_t = d, t
    return best_d, best_t
