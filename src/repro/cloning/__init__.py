"""Request-cloning lab: PS cloning analytics + the minimal DES harness.

``analytic`` holds the closed forms (min-of-d service, M/G/1-PS response
times, the cluster trade-off and its optimal clone factor); ``lab`` runs
the stripped-down simulator that those forms describe exactly. The
``spright-repro cloning`` experiment (repro.experiments.cloning_exp) uses
both: validate DES vs oracle, then sweep clone factor x load x plane on
the real dataplanes to find each plane's measured optimum.
"""

from .analytic import (
    DISTRIBUTIONS,
    cluster_response_time,
    expected_min_service,
    optimal_clone_factor,
    ps_response_time,
)
from .lab import ARRIVAL_STREAM, LabResult, PsLabPlane, run_clone_point

__all__ = [
    "ARRIVAL_STREAM",
    "DISTRIBUTIONS",
    "LabResult",
    "PsLabPlane",
    "cluster_response_time",
    "expected_min_service",
    "optimal_clone_factor",
    "ps_response_time",
    "run_clone_point",
]
