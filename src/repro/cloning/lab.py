"""Minimal DES harness that reproduces the analytic cloning model exactly.

The validation question is "does the simulator's PS + synchronized-cloning
machinery match the closed forms?", so the harness strips away everything
the oracle does not model: no transport legs, no proxies, no marshaling —
just ``n`` processor-sharing pods behind the real
:class:`~repro.faults.ResilienceController`, fed by an open-loop Poisson
process. Clone placement uses the same claimed-pod exclusion the real
planes use, so with ``clone_factor == replicas`` every job lands on every
pod — the synchronized d-of-d form with an exact M/G/1-PS equivalent.

Everything is deterministic per seed: arrivals come from the
``cloning/arrivals`` RNG stream and service times from the pod's usual
``service/<fn>`` stream, so a validation pass on one machine is a pass on
every machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..dataplane.base import Request, RequestClass
from ..faults.resilience import CloneCostModel, ResilienceController, ResiliencePolicy
from ..kernel import NodeConfig
from ..runtime import FunctionSpec, WorkerNode
from ..runtime.pod import Pod
from .analytic import ps_response_time

ARRIVAL_STREAM = "cloning/arrivals"
LAB_FUNCTION = "clone-lab"


class PsLabPlane:
    """The barest plane the resilience controller can drive.

    ``deliver_once`` picks a pod round-robin (honoring the clone group's
    claimed-pod set, with the same all-claimed fallback the real pickers
    use) and serves on it — nothing else. The pods are processor-sharing,
    so concurrent clones stretch each other exactly as the model assumes.
    """

    plane = "lab"

    def __init__(self, node: WorkerNode, spec: FunctionSpec, replicas: int) -> None:
        self.node = node
        self.pods = [
            Pod(node, spec, cpu_tag=f"{self.plane}/fn/{spec.name}") for _ in range(replicas)
        ]
        for pod in self.pods:
            pod.start()
        self._rr = 0

    def _pick(self, claimed: Optional[set]) -> Pod:
        candidates = self.pods
        if claimed:
            unclaimed = [pod for pod in self.pods if pod.instance_id not in claimed]
            if unclaimed:
                candidates = unclaimed
        pod = candidates[self._rr % len(candidates)]
        self._rr += 1
        return pod

    def deliver_once(self, request: Request):
        pod = self._pick(request.claimed_pods)
        if request.claimed_pods is not None:
            request.claimed_pods.add(pod.instance_id)
        result = yield from pod.serve(request.payload)
        request.response = result.payload
        request.completed_at = self.node.env.now
        return request


@dataclass
class LabResult:
    """One (arrival rate, clone factor) point: measured vs predicted."""

    lam: float
    clone_factor: int
    dist: str
    completed: int
    failed: int
    mean_response: float
    analytic: float
    node: WorkerNode = field(repr=False)
    pods: list = field(repr=False, default_factory=list)
    samples: list = field(repr=False, default_factory=list)

    @property
    def relative_error(self) -> float:
        if self.analytic == 0:
            return float("inf")
        return abs(self.mean_response - self.analytic) / self.analytic

    def within(self, tolerance: float = 0.05) -> bool:
        return self.relative_error <= tolerance


def run_clone_point(
    lam: float,
    service_mean: float,
    clone_factor: int,
    dist: str = "exp",
    replicas: Optional[int] = None,
    duration: float = 20.0,
    warmup: float = 2.0,
    seed: int = 2022,
    clone_cost: Optional[CloneCostModel] = None,
    payload_size: int = 256,
) -> LabResult:
    """Run one validation point and return DES measurement + oracle value.

    Defaults to ``replicas == clone_factor`` — the synchronized d-of-d form
    whose oracle (:func:`~repro.cloning.analytic.ps_response_time`) is
    exact. The oracle assumes free cloning, so pass ``clone_cost`` only
    when studying cost effects, not when validating.
    """
    replicas = clone_factor if replicas is None else replicas
    config = NodeConfig(root_seed=seed)
    config.cores = max(4, replicas)
    node = WorkerNode(config)
    spec = FunctionSpec(
        name=LAB_FUNCTION,
        service_time=service_mean,
        service_dist=dist,
        service_discipline="ps",
        concurrency=4096,  # PS occupancy, not slots, must govern
        max_scale=max(10, replicas),
    )
    plane = PsLabPlane(node, spec, replicas)
    policy = ResiliencePolicy(clone_factor=clone_factor, clone_cost=clone_cost)
    controller = ResilienceController(plane, policy)
    request_class = RequestClass(
        name=LAB_FUNCTION, sequence=[LAB_FUNCTION], payload_size=payload_size
    )
    payload = b"x" * payload_size
    samples: list = []
    failures = [0]
    env = node.env

    def one_request():
        request = Request(
            request_class=request_class, payload=payload, created_at=env.now
        )
        started = env.now
        yield from controller.execute(request)
        if request.failed:
            failures[0] += 1
        elif started >= warmup:
            samples.append(env.now - started)

    def arrivals():
        while True:
            yield env.timeout(node.rng.exponential(ARRIVAL_STREAM, 1.0 / lam))
            env.process(one_request(), name="clone-lab-request")

    env.process(arrivals(), name="clone-lab-arrivals")
    node.run(until=duration)

    mean = sum(samples) / len(samples) if samples else float("nan")
    return LabResult(
        lam=lam,
        clone_factor=clone_factor,
        dist=dist,
        completed=len(samples),
        failed=failures[0],
        mean_response=mean,
        analytic=ps_response_time(lam, service_mean, clone_factor, dist),
        node=node,
        pods=plane.pods,
        samples=samples,
    )
