"""Multi-node cluster dataplane: fabric, function placement, λ-NIC offload.

The single-node planes answer "which dataplane wins on one node?"; this
package answers the §3.8 question — what happens when a chain no longer
fits on one node. :func:`build_cluster` puts several workers on one clock,
:class:`ClusterScheduler` places individual chain functions under CPU and
memory constraints, and :class:`ClusterDataplane` executes the chain with
plane-native costs inside a node and real serialized transfers across the
:class:`ClusterFabric` between nodes.
"""

from .fabric import (
    ClusterFabric,
    LinkSpec,
    build_cluster,
    decode_wire,
    encode_wire,
)
from .scheduler import (
    POLICIES,
    ClusterScheduler,
    FunctionPlacement,
    function_core_request,
    function_memory_request,
)
from .chain import PLANE_TAGS, SHM_PLANES, ClusterDataplane

__all__ = [
    "ClusterDataplane",
    "ClusterFabric",
    "ClusterScheduler",
    "FunctionPlacement",
    "LinkSpec",
    "PLANE_TAGS",
    "POLICIES",
    "SHM_PLANES",
    "build_cluster",
    "decode_wire",
    "encode_wire",
    "function_core_request",
    "function_memory_request",
]
