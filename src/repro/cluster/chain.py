"""A function chain executed across cluster nodes under a placement.

The single-node planes in ``repro.dataplane`` own a whole chain on one
node; :class:`ClusterDataplane` walks the same call sequence across the
nodes a :class:`~repro.cluster.scheduler.FunctionPlacement` chose.
Same-node hops pay the plane's native transport cost — a SPROXY descriptor
redirect, a ring enqueue/dequeue, or a kernel/loopback leg — while node
boundaries traverse the :class:`~repro.cluster.fabric.ClusterFabric`:
payloads leave the node's shared-memory pool, are framed by a real protocol
codec, and pay both ends' NIC stacks plus wire time. That asymmetry is the
entire cluster experiment: every boundary a placement introduces converts a
~2 µs descriptor hop into a ~30 µs serialized transfer.

On the ``lambda-nic`` plane each node hosting functions gets a
:class:`~repro.dataplane.spright.NicComputeEngine`; offload-eligible
functions execute on their node's NIC cores (a cross-node transfer into an
offloaded function terminates at the receiving NIC — no host rx cost at
all), and everything else falls back to host pods on the S-SPRIGHT path.
"""

from __future__ import annotations

from typing import Optional

from ..dataplane import ProxyComponent, Request
from ..dataplane.legs import external_arrival, leg_kernel, leg_localhost
from ..dataplane.spright import NicComputeEngine, NicComputeModel, SpinCharger
from ..mem import PoolSanitizer, SharedMemoryManager, default_sanitize
from ..runtime import ChainSpec, Kubelet, WorkerNode
from ..simcore import DeliveryError
from .fabric import ClusterFabric
from .scheduler import FunctionPlacement

#: plane key -> CPU-tag prefix (kept distinct from the single-node planes
#: so cluster runs never pollute their accounting prefixes)
PLANE_TAGS = {
    "knative": "xc-kn",
    "grpc": "xc-grpc",
    "s-spright": "xc-sspright",
    "d-spright": "xc-dspright",
    "lambda-nic": "xc-lambdanic",
}
SHM_PLANES = ("s-spright", "d-spright", "lambda-nic")


class ClusterDataplane:
    """Executes one chain over the fabric according to a placement."""

    def __init__(
        self,
        fabric: ClusterFabric,
        chain: ChainSpec,
        plane: str,
        placement: FunctionPlacement,
        protocol: str = "grpc",
        gateway_cores: int = 2,
        sanitize: Optional[bool] = None,
        nic_model: Optional[NicComputeModel] = None,
        pool_capacity: int = 8192,
        pool_buffer_size: int = 16384,
    ) -> None:
        if plane not in PLANE_TAGS:
            raise KeyError(f"unknown plane {plane!r}; choose from {sorted(PLANE_TAGS)}")
        missing = [f for f in chain.function_names if f not in placement.assignments]
        if missing:
            raise ValueError(f"placement misses functions {missing!r}")
        self.fabric = fabric
        self.chain = chain
        self.plane_name = plane
        self.plane = PLANE_TAGS[plane]
        self.placement = placement
        self.protocol = protocol
        self.shm = plane in SHM_PLANES
        if sanitize is None:
            sanitize = default_sanitize()
        self.sanitize = sanitize

        self.nodes_used = [
            fabric.nodes[name] for name in placement.nodes_used()
        ]
        entry = chain.functions[0].name
        self.ingress_node: WorkerNode = fabric.nodes[placement.node_of(entry)]
        # The cluster ingress gateway sits with the entry function. SPRIGHT
        # planes pin it (the paper's fair-comparison config); the baselines
        # float it on the shared cores like Istio.
        self.gateway = ProxyComponent(
            self.ingress_node,
            tag=f"{self.plane}/gw",
            pinned_cores=gateway_cores if self.shm else None,
            path_cpu=10e-6,
            overhead_cpu=20e-6,
        )

        # Per-node wiring: kubelet + deployments for the functions placed
        # there, a private shm pool (SPRIGHT planes), NIC engines (λ-NIC),
        # poll-core spinners (D-SPRIGHT).
        self._kubelets: dict[str, Kubelet] = {}
        self.deployments: dict[str, object] = {}
        self._pools: dict[str, object] = {}
        self._managers: dict[str, SharedMemoryManager] = {}
        self.engines: dict[str, NicComputeEngine] = {}
        self._spinners: list[SpinCharger] = []
        self._net_ops: dict[str, object] = {}
        for node in self.nodes_used:
            self._kubelets[node.name] = Kubelet(
                node, cold_start_enabled=False, termination_lag=0.0
            )
            self._net_ops[node.name] = node.ops(f"{self.plane}/net")
            if self.shm:
                manager = SharedMemoryManager(
                    node.pools, f"{chain.name}@{node.name}"
                )
                manager.initialize(
                    buffer_size=pool_buffer_size, capacity=pool_capacity
                )
                pool = manager.attach(manager.file_prefix)
                if sanitize:
                    pool.attach_sanitizer(PoolSanitizer(counter=node.counters))
                self._managers[node.name] = manager
                self._pools[node.name] = pool
            if plane == "lambda-nic":
                engine = getattr(node.nic, "offload_engine", None)
                if engine is None:
                    engine = NicComputeEngine(node, nic_model)
                self.engines[node.name] = engine
        for spec in chain.functions:
            node = fabric.nodes[placement.node_of(spec.name)]
            deployment = self._kubelets[node.name].deployment(
                spec, f"{self.plane}/fn/{spec.name}"
            )
            deployment.ensure_scale(max(1, spec.min_scale))
            self.deployments[spec.name] = deployment
            if plane == "d-spright":
                for pod in deployment.servable_pods():
                    self._spinners.append(SpinCharger(node, pod.cpu_tag, cores=1.0))
        if plane == "d-spright" and self.shm:
            self._spinners.append(
                SpinCharger(self.ingress_node, self.gateway.tag, cores=gateway_cores)
            )

        self.requests_completed = 0
        self.xnode_hops = 0
        self.offloaded = 0
        self.host_serves = 0

    # -- bookkeeping ---------------------------------------------------------
    def per_request_hops(self) -> float:
        if self.requests_completed == 0:
            return 0.0
        return self.xnode_hops / self.requests_completed

    def leaked_slots(self) -> int:
        """Shared-memory buffers still allocated (call after a drain)."""
        return sum(
            pool.capacity - pool.free_count for pool in self._pools.values()
        )

    def host_cpu_percent(self, duration: float) -> float:
        """Host CPU of this plane summed over every node (core-%)."""
        return sum(
            node.cpu_percent_prefix(f"{self.plane}/", duration)
            for node in self.fabric.nodes.values()
        )

    def nic_cpu_cores(self, duration: float) -> float:
        return sum(
            engine.nic_cpu_cores(duration) for engine in self.engines.values()
        )

    def teardown(self) -> None:
        for spinner in self._spinners:
            spinner.stop()
        for manager in self._managers.values():
            manager.teardown()

    # -- request path --------------------------------------------------------
    def submit(self, request: Request):
        """Generator: run one request end to end (mirrors Dataplane.submit)."""
        env = self.ingress_node.env
        obs = self.ingress_node.obs
        tracer = obs.tracer if obs is not None else None
        if tracer is not None and request.span is None:
            tracer.start_request(
                request,
                f"{self.plane}:{request.request_class.name}",
                plane=self.plane,
                request_class=request.request_class.name,
                bytes=len(request.payload),
            )
        try:
            yield from self.handle_request(request)
        except DeliveryError as error:
            request.failed = True
            request.error = error
            self.ingress_node.counters.incr(f"faults/failed/{error.kind}")
        request.completed_at = env.now
        if tracer is not None and request.span is not None:
            tracer.finish_request(request, failed=request.failed)
        if not request.failed:
            self.requests_completed += 1
        return request

    def handle_request(self, request: Request):
        env = self.ingress_node.env
        sequence = request.request_class.sequence
        nbytes = len(request.payload)
        costs = self.ingress_node.config.costs
        request.mark("ingress", env.now)

        # λ-NIC: when the entry function is offload-eligible on the ingress
        # node, the request is intercepted at the NIC's XDP layer and never
        # reaches the host gateway — the zero-host-cost entry path.
        entry_engine = self.engines.get(self.ingress_node.name)
        nic_entry = entry_engine is not None and entry_engine.eligible(
            self.chain.function(sequence[0])
        )
        span = request.span_begin(
            "leg:external", "leg", bytes=nbytes, nic=nic_entry
        )
        if nic_entry:
            yield env.timeout(costs.nic_dma + costs.xdp_fixed)
        else:
            # ①: client -> cluster ingress gateway on the entry node.
            yield from external_arrival(self.gateway.ops, nbytes, None, None)
            yield from self.gateway.traverse()
        request.span_end(span)

        payload = request.payload
        current = self.ingress_node
        handle = None          # shm residency: the pool buffer, if any
        handle_node = None     # ... and which node's pool owns it
        at_nic = nic_entry     # λ-NIC: payload currently in NIC SRAM
        try:
            for index, name in enumerate(sequence):
                spec = self.chain.function(name)
                target = self.fabric.nodes[self.placement.node_of(name)]
                engine = self.engines.get(target.name)
                offloadable = engine is not None and engine.eligible(spec)

                if target is not current:
                    if handle is not None:
                        payload = self._pool_read_free(handle_node, handle)
                        handle = handle_node = None
                    payload = yield from self.fabric.transfer(
                        current,
                        target,
                        payload,
                        ops_tx=self._net_ops[current.name],
                        ops_rx=self._net_ops[target.name],
                        request=request,
                        protocol=self.protocol,
                        nic_terminated=offloadable,
                        nic_sourced=at_nic,
                    )
                    self.xnode_hops += 1
                    at_nic = offloadable
                    current = target
                elif index > 0:
                    yield from self._intra_hop(current, len(payload), request)

                if offloadable and engine.try_reserve():
                    if handle is not None:
                        # Host pool -> NIC SRAM: cross PCIe once.
                        payload = self._pool_read_free(handle_node, handle)
                        handle = handle_node = None
                        yield env.timeout(current.config.costs.nic_dma)
                    try:
                        result = yield from engine.execute(spec, payload)
                    finally:
                        engine.release()
                    at_nic = True
                    self.offloaded += 1
                    current.counters.incr(f"{self.plane}/offloaded")
                else:
                    if offloadable:
                        current.counters.incr(f"{self.plane}/host_fallbacks")
                    if at_nic:
                        # NIC SRAM -> host memory: cross PCIe back in.
                        yield env.timeout(current.config.costs.nic_dma)
                        at_nic = False
                    if self.shm and handle is None:
                        handle, handle_node = self._pool_alloc(current, payload)
                    pod = yield from self._acquire_pod(name)
                    result = yield from pod.serve(payload)
                    self.host_serves += 1
                    if handle is not None:
                        # Zero-copy in-place update of the chain's buffer.
                        self._pools[handle_node].write(handle, result.payload)
                payload = result.payload
                request.mark(f"served:{name}", env.now)

            # Response leg back to the ingress node (DFR-style ⑧).
            if handle is not None:
                payload = self._pool_read_free(handle_node, handle)
                handle = handle_node = None
            if current is not self.ingress_node:
                payload = yield from self.fabric.transfer(
                    current,
                    self.ingress_node,
                    payload,
                    ops_tx=self._net_ops[current.name],
                    ops_rx=self.gateway.ops,
                    request=request,
                    protocol=self.protocol,
                    nic_terminated=nic_entry,
                    nic_sourced=at_nic,
                )
                self.xnode_hops += 1
                at_nic = nic_entry
                current = self.ingress_node

            # ⑨: the response to the external client. A NIC-intercepted
            # request answers straight from the NIC (tx DMA only); a
            # gateway-terminated one pays the host response bundle.
            span = request.span_begin(
                "leg:response", "leg", bytes=len(payload), nic=nic_entry
            )
            if nic_entry:
                if not at_nic:
                    # Payload ended on the host: cross PCIe back to the NIC
                    # that still holds the client's flow state.
                    yield env.timeout(costs.nic_dma)
                yield env.timeout(costs.nic_dma)
                self.ingress_node.counters.incr(f"{self.plane}/nic_responses")
            else:
                if at_nic:
                    yield env.timeout(costs.nic_dma)
                bundle = self.gateway.ops.bundle()
                bundle.serialize(len(payload), None, None)
                bundle.copy(len(payload), None, None)
                bundle.protocol_processing(len(payload), None, None)
                yield bundle.commit()
            request.span_end(span)
        finally:
            if handle is not None:
                self._pools[handle_node].free(handle)
        request.response = payload
        request.mark("response", env.now)
        return request

    # -- helpers -------------------------------------------------------------
    def _pool_alloc(self, node: WorkerNode, payload: bytes):
        pool = self._pools[node.name]
        ops = self._net_ops[node.name]
        handle = pool.alloc(site=f"{self.plane}/{self.chain.name}@{node.name}")
        pool.write(handle, payload)
        # mempool get is cheap and off the critical path: charged, not awaited
        ops.background(node.config.costs.shm_pool_get)
        return handle, node.name

    def _pool_read_free(self, node_name: str, handle) -> bytes:
        pool = self._pools[node_name]
        payload = pool.read(handle)
        pool.free(handle)
        return payload

    def _intra_hop(self, node: WorkerNode, nbytes: int, request: Request):
        """Same-node function-to-function hop at the plane's native cost."""
        costs = node.config.costs
        ops = self._net_ops[node.name]
        span = request.span_begin(
            "hop:intra", "shm" if self.shm else "leg", bytes=nbytes, node=node.name
        )
        if self.plane_name == "knative":
            # Broker/queue-proxy style: a kernel leg plus the sidecar's
            # loopback leg — Table 1's within-chain shape.
            yield from leg_kernel(ops, nbytes, None, None)
            yield from leg_localhost(ops, nbytes, None, None)
        elif self.plane_name == "grpc":
            yield from leg_kernel(ops, nbytes, None, None)
        elif self.plane_name == "d-spright":
            yield ops.compute(costs.ring_enqueue + costs.ring_dequeue)
        else:
            # S-SPRIGHT / λ-NIC host path: SPROXY descriptor redirect plus
            # the receiver's wakeup — the payload never moves.
            yield ops.compute(costs.sockmap_redirect)
            yield ops.context_switch(None, None)
        request.span_end(span)

    def _acquire_pod(self, function: str):
        deployment = self.deployments[function]
        pick = (
            deployment.pick_residual_capacity
            if self.shm
            else deployment.pick_round_robin
        )
        pod = pick()
        while pod is None:
            if not deployment.live_pods():
                deployment.scale_to(1)
                deployment.note_cold_start()
            yield deployment.any_servable_event()
            pod = pick()
        return pod
