"""Function-granularity placement across cluster nodes.

`runtime/scheduler.py` places whole chains (the paper's §3.8 chain-affinity
constraint); this module relaxes that: individual chain *functions* land on
nodes under CPU/memory constraints, and the placement policy decides how
much of the chain stays colocated — which is exactly what the cluster
experiment measures, because every node boundary a SPRIGHT chain crosses
turns a shared-memory descriptor hop into a serialized wire transfer.

Policies (all deterministic functions of the topology and chain — no RNG):

* ``bin_pack``    — best-fit decreasing on core request: packs tightly,
  ignores adjacency; chains shred across nodes as bins fill.
* ``spread``      — each function to the node with the most free cores:
  maximal load balance, minimal locality.
* ``chain_locality`` — walk the chain in call order, staying on the current
  node while it fits; on overflow, move to the roomiest other node and keep
  walking. Produces long same-node segments — the SPRIGHT-friendly policy.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..runtime import ChainSpec, FunctionSpec
from ..runtime.scheduler import (
    NodeDescriptor,
    PlacementError,
    placement_diagnostics,
)

POLICIES = ("bin_pack", "spread", "chain_locality")


def function_core_request(spec: FunctionSpec) -> float:
    """Host cores one function asks for.

    Light handlers (under the λ-NIC offload ballpark) request half a core;
    heavier ones scale with mean service time, capped at two cores — the
    asymmetry is what forces interesting placements on small nodes.
    """
    if spec.service_time <= 60e-6:
        return 0.5
    return min(2.0, 0.5 + spec.service_time / 200e-6)


def function_memory_request(spec: FunctionSpec, pool_share_mb: float = 8.0) -> float:
    """Function memory plus its share of the per-node chain pool."""
    return spec.memory_mb + pool_share_mb


@dataclass
class FunctionPlacement:
    """The outcome: which node hosts each function of one chain."""

    chain: str
    policy: str
    assignments: dict[str, str] = field(default_factory=dict)

    def node_of(self, function: str) -> str:
        return self.assignments[function]

    def nodes_used(self) -> list[str]:
        """Distinct nodes, in first-use order over the chain's functions."""
        seen: list[str] = []
        for node in self.assignments.values():
            if node not in seen:
                seen.append(node)
        return seen

    def transitions(self, sequence: Sequence[str]) -> int:
        """Node boundaries crossed executing ``sequence`` plus the return
        leg to the ingress (which sits with the first function)."""
        hops = 0
        previous: Optional[str] = None
        for function in sequence:
            node = self.assignments[function]
            if previous is not None and node != previous:
                hops += 1
            previous = node
        if sequence and previous != self.assignments[sequence[0]]:
            hops += 1
        return hops

    def digest(self) -> str:
        """Stable fingerprint of the assignment (determinism tests)."""
        blob = ";".join(
            f"{fn}={node}" for fn, node in sorted(self.assignments.items())
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


class ClusterScheduler:
    """Places one chain's functions over registered node descriptors."""

    def __init__(self, nodes: Sequence[NodeDescriptor]) -> None:
        self.nodes: dict[str, NodeDescriptor] = {}
        for descriptor in nodes:
            if descriptor.name in self.nodes:
                raise ValueError(f"node {descriptor.name!r} already registered")
            self.nodes[descriptor.name] = descriptor

    # -- public API ---------------------------------------------------------
    def place(self, chain: ChainSpec, policy: str) -> FunctionPlacement:
        if policy not in POLICIES:
            raise PlacementError(
                f"unknown policy {policy!r}; choose from {POLICIES}"
            )
        placement = FunctionPlacement(chain=chain.name, policy=policy)
        if policy == "bin_pack":
            self._place_bin_pack(chain, placement)
        elif policy == "spread":
            self._place_spread(chain, placement)
        else:
            self._place_chain_locality(chain, placement)
        return placement

    # -- shared helpers -----------------------------------------------------
    def _fits(self, node: NodeDescriptor, spec: FunctionSpec) -> bool:
        return (
            node.free_cores >= function_core_request(spec)
            and node.free_memory_mb >= function_memory_request(spec)
        )

    def _commit(
        self,
        node: NodeDescriptor,
        chain: ChainSpec,
        spec: FunctionSpec,
        placement: FunctionPlacement,
    ) -> None:
        node.committed_cores += function_core_request(spec)
        node.committed_memory_mb += function_memory_request(spec)
        node.chains.append(f"{chain.name}/{spec.name}")
        placement.assignments[spec.name] = node.name

    def _no_fit(self, chain: ChainSpec, spec: FunctionSpec) -> PlacementError:
        cores = function_core_request(spec)
        memory = function_memory_request(spec)
        return PlacementError(
            f"no node has {cores:.1f} cores + {memory:.0f} MB "
            f"for function {chain.name}/{spec.name}",
            diagnostics=placement_diagnostics(
                f"{chain.name}/{spec.name}", cores, memory, self.nodes.values()
            ),
        )

    # -- policies -----------------------------------------------------------
    def _place_bin_pack(
        self, chain: ChainSpec, placement: FunctionPlacement
    ) -> None:
        # Best-fit decreasing: biggest requests first, each into the node
        # left with the least slack. Name breaks core-request ties so the
        # order is a pure function of the chain spec.
        ordered = sorted(
            chain.functions,
            key=lambda spec: (-function_core_request(spec), spec.name),
        )
        for spec in ordered:
            candidates = [n for n in self.nodes.values() if self._fits(n, spec)]
            if not candidates:
                raise self._no_fit(chain, spec)
            best = min(
                candidates,
                key=lambda n: (n.free_cores - function_core_request(spec), n.name),
            )
            self._commit(best, chain, spec, placement)

    def _place_spread(
        self, chain: ChainSpec, placement: FunctionPlacement
    ) -> None:
        for spec in chain.functions:
            candidates = [n for n in self.nodes.values() if self._fits(n, spec)]
            if not candidates:
                raise self._no_fit(chain, spec)
            best = max(candidates, key=lambda n: (n.free_cores, n.name))
            self._commit(best, chain, spec, placement)

    def _place_chain_locality(
        self, chain: ChainSpec, placement: FunctionPlacement
    ) -> None:
        current: Optional[NodeDescriptor] = None
        for spec in chain.functions:
            if current is not None and self._fits(current, spec):
                self._commit(current, chain, spec, placement)
                continue
            others = [
                n
                for n in self.nodes.values()
                if n is not current and self._fits(n, spec)
            ]
            if not others:
                raise self._no_fit(chain, spec)
            # Roomiest other node: the next same-node segment can run long.
            current = max(others, key=lambda n: (n.free_cores, n.name))
            self._commit(current, chain, spec, placement)
