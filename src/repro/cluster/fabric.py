"""The cluster fabric: nodes on one simulated clock, linked by real legs.

§3.8 of the paper discusses multi-node SPRIGHT deployments; this module
builds the substrate: several :class:`~repro.runtime.WorkerNode`\\ s sharing
one :class:`~repro.simcore.Environment`, joined by point-to-point links with
per-link latency and bandwidth. A cross-node transfer is not a magic
timeout — the payload leaves shared memory, is framed by a *real* protocol
codec (gRPC length-prefixed frames or HTTP/1.1), pays the sender's tx stack
and the receiver's rx stack as audited :class:`~repro.kernel.KernelOps`
bundles plus a NIC DMA on each end, and is routed through the sender's
simulated FIB exactly like single-node traffic.

Every cross-node leg counts ``cluster/xnode_hops`` and a per-link byte
counter (``cluster/<src>-><dst>/bytes``) in the sending node's metrics
registry, and opens a ``leg:xnode`` span on the request when tracing is on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..kernel import FiveTuple, NodeConfig
from ..protocols import HttpRequest, ProtoMessage, decode_frame, decode_request
from ..protocols import encode_frame, encode_request
from ..runtime import WorkerNode
from ..simcore import DeliveryError, Environment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dataplane import Request
    from ..kernel import KernelOps

#: field number carrying the payload in the cross-node Invoke proto message
_PAYLOAD_FIELD = 1
_XNODE_PORT = 8080


@dataclass(frozen=True)
class LinkSpec:
    """One direction of a node-to-node link (ToR switch hop by default)."""

    latency: float = 25e-6          # propagation + switching
    bandwidth_bps: float = 10e9     # serialization rate on the wire

    def wire_time(self, nbytes: int) -> float:
        return self.latency + (nbytes * 8.0) / self.bandwidth_bps

    @classmethod
    def from_costs(cls, costs) -> "LinkSpec":
        return cls(
            latency=costs.xnode_link_latency,
            bandwidth_bps=costs.xnode_bandwidth_bps,
        )


def encode_wire(payload: bytes, protocol: str) -> bytes:
    """Frame a payload for the wire with the real codec for ``protocol``."""
    if protocol == "grpc":
        message = ProtoMessage().set(_PAYLOAD_FIELD, payload)
        return encode_frame(message.encode())
    if protocol == "http":
        request = HttpRequest(
            method="POST",
            path="/invoke",
            headers={"content-type": "application/octet-stream"},
            body=payload,
        )
        return encode_request(request)
    raise ValueError(f"unknown cross-node protocol {protocol!r}")


def decode_wire(wire: bytes, protocol: str) -> bytes:
    """Recover the payload on the receiving node (round-trip checked)."""
    if protocol == "grpc":
        message, _compressed = decode_frame(wire)
        return ProtoMessage.decode(message).get_bytes(_PAYLOAD_FIELD)
    if protocol == "http":
        return decode_request(wire).body
    raise ValueError(f"unknown cross-node protocol {protocol!r}")


class ClusterFabric:
    """Node registry + IP plan + links; moves payloads between nodes.

    Nodes must share one :class:`Environment` (see :func:`build_cluster`).
    Registration assigns each node a cluster IP (``10.10.<idx>.1``) and
    installs bidirectional FIB routes through the physical NICs, so every
    transfer resolves its egress interface with a real
    :meth:`~repro.kernel.FibTable.lookup` — no route, no delivery.
    """

    def __init__(
        self, env: Environment, default_link: Optional[LinkSpec] = None
    ) -> None:
        self.env = env
        self.default_link = default_link or LinkSpec()
        self.nodes: dict[str, WorkerNode] = {}
        self.ips: dict[str, str] = {}
        self._links: dict[tuple[str, str], LinkSpec] = {}
        self.xnode_hops = 0
        self.bytes_moved = 0

    # -- topology -----------------------------------------------------------
    def add_node(self, node: WorkerNode) -> WorkerNode:
        if node.env is not self.env:
            raise ValueError(f"node {node.name!r} is not on the fabric's clock")
        if node.name in self.nodes:
            raise ValueError(f"node {node.name!r} already registered")
        ip = f"10.10.{len(self.nodes) + 1}.1"
        for peer_name, peer in self.nodes.items():
            peer.fib.add_route(ip, peer.nic.ifindex)
            node.fib.add_route(self.ips[peer_name], node.nic.ifindex)
        self.nodes[node.name] = node
        self.ips[node.name] = ip
        return node

    def set_link(self, src: str, dst: str, link: LinkSpec) -> None:
        """Override one direction's link spec (set both for symmetry)."""
        self._links[(src, dst)] = link

    def link_between(self, src: str, dst: str) -> LinkSpec:
        return self._links.get((src, dst), self.default_link)

    # -- data movement ------------------------------------------------------
    def transfer(
        self,
        src: WorkerNode,
        dst: WorkerNode,
        payload: bytes,
        ops_tx: "KernelOps",
        ops_rx: "KernelOps",
        request: Optional["Request"] = None,
        protocol: str = "grpc",
        nic_terminated: bool = False,
        nic_sourced: bool = False,
    ):
        """Generator: one cross-node leg; returns the decoded payload.

        Sender side: marshal through the protocol codec, copy into the tx
        stack, protocol processing, 2 interrupts, NIC tx DMA — unless
        ``nic_sourced``, where the payload already sits in the sending
        SmartNIC's SRAM and the NIC frames it itself (XDP cost, zero host
        tx work). Wire: link latency + bytes/bandwidth. Receiver side: rx
        DMA then either the full rx stack (protocol processing, 2
        interrupts, copy, 2 context switches, unmarshal) or —
        ``nic_terminated`` — just the XDP parse, because the frame stays on
        the receiving SmartNIC (λ-NIC ingress).
        """
        costs_tx = src.config.costs
        costs_rx = dst.config.costs
        wire = encode_wire(payload, protocol)
        nbytes = len(wire)
        flow = FiveTuple(
            src_ip=self.ips[src.name],
            dst_ip=self.ips[dst.name],
            src_port=40000,
            dst_port=_XNODE_PORT,
        )
        if src.fib.lookup(flow) is None:
            raise DeliveryError(
                "no_route", f"no FIB route {src.name} -> {dst.name}"
            )
        span = None
        if request is not None:
            span = request.span_begin(
                "leg:xnode",
                "leg",
                src=src.name,
                dst=dst.name,
                bytes=nbytes,
                protocol=protocol,
            )
        if nic_sourced:
            # The sending NIC frames and transmits straight from SRAM.
            yield self.env.timeout(costs_tx.xdp_fixed)
        else:
            tx = ops_tx.bundle()
            tx.serialize(nbytes, None, None)
            tx.copy(nbytes, None, None)
            tx.protocol_processing(nbytes, None, None)
            tx.interrupt(None, None, count=2)
            yield tx.commit()
            yield self.env.timeout(costs_tx.nic_dma)

        link = self.link_between(src.name, dst.name)
        yield self.env.timeout(link.wire_time(nbytes))

        yield self.env.timeout(costs_rx.nic_dma)
        if nic_terminated:
            # The frame lands in the receiving SmartNIC's SRAM and is
            # consumed there: XDP parse only, zero host rx cost.
            yield self.env.timeout(costs_rx.xdp_fixed)
        else:
            rx = ops_rx.bundle()
            rx.protocol_processing(nbytes, None, None)
            rx.interrupt(None, None, count=2)
            rx.copy(nbytes, None, None)
            rx.context_switch(None, None, count=2)
            rx.deserialize(nbytes, None, None)
            yield rx.commit()

        self.xnode_hops += 1
        self.bytes_moved += nbytes
        src.counters.incr("cluster/xnode_hops")
        src.counters.incr(f"cluster/{src.name}->{dst.name}/bytes", nbytes)
        if request is not None:
            request.span_end(span)
        return decode_wire(wire, protocol)


def build_cluster(
    node_count: int,
    scale: float = 1.0,
    seed: int = 2022,
    cores: int = 40,
    link: Optional[LinkSpec] = None,
) -> ClusterFabric:
    """A full-mesh cluster of ``node_count`` workers on one clock.

    Per-node RNG roots are decorrelated (``seed + 101 * idx``) so two nodes
    never replay each other's service-time draws; node 0's root is exactly
    ``seed``, which keeps a 1-node cluster's draw sequences identical to a
    single-node :func:`~repro.experiments.common.make_node` run — the
    byte-identity guarantee the golden tests pin down.
    """
    env = Environment()
    config0 = NodeConfig(root_seed=seed)
    fabric = ClusterFabric(
        env, default_link=link or LinkSpec.from_costs(config0.costs)
    )
    for idx in range(node_count):
        config = NodeConfig(root_seed=seed + 101 * idx)
        config.cores = max(4, int(round(cores * scale)))
        fabric.add_node(
            WorkerNode(config, env=env, name=f"worker-{idx + 1}")
        )
    return fabric
