"""Arrival processes: lazy, restartable, deterministic event sources.

The paper's zero-scaling experiment (Fig 11) replays one hand-built motion
trace. Reproducing that result at fleet scale needs production-shaped
traffic: Poisson baselines, Markov-modulated bursts, diurnal cycles, and an
Azure-Functions-style synthetic fleet with Zipf per-function popularity and
heavy-tailed inter-arrival times (cf. "Serverless in the Wild" and "The
High Cost of Keeping Warm").

Design rules:

* **Streaming** — a source is an :class:`ArrivalSource`: calling
  :meth:`~ArrivalSource.events` yields :class:`Arrival`\\ s lazily in
  non-decreasing time order. Million-event days are never materialized.
* **Restartable** — every ``events()`` call re-derives its own
  ``random.Random`` from ``(seed, name)`` via
  :func:`repro.simcore.derive_stream_seed`, so two iterations (or two
  worker processes in the fleet runner) produce byte-identical traces.
* **Named streams** — each source owns exactly one derived stream; adding a
  source never perturbs another source's draws.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Protocol, runtime_checkable

from ..simcore import derive_stream_seed


@dataclass(frozen=True)
class Arrival:
    """One arrival: when it lands and which function it invokes."""

    time: float
    fn: str


@runtime_checkable
class ArrivalSource(Protocol):
    """A restartable stream of time-ordered arrivals."""

    name: str

    def events(self) -> Iterator[Arrival]:
        """Fresh iterator over the arrivals, in non-decreasing time order."""
        ...


class _SeededSource:
    """Base: derives a fresh private RNG per ``events()`` call."""

    def __init__(self, name: str, fn: str, seed: int, duration: float) -> None:
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.name = name
        self.fn = fn
        self.seed = seed
        self.duration = duration

    def _rng(self) -> random.Random:
        return random.Random(derive_stream_seed(self.seed, self.name))

    def __iter__(self) -> Iterator[Arrival]:
        return self.events()

    def events(self) -> Iterator[Arrival]:  # pragma: no cover - abstract
        raise NotImplementedError


class PoissonSource(_SeededSource):
    """Homogeneous Poisson arrivals at ``rate`` events/second."""

    def __init__(
        self, rate: float, duration: float, fn: str = "fn", seed: int = 2022,
        name: Optional[str] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        super().__init__(name or f"poisson/{fn}", fn, seed, duration)
        self.rate = rate

    def events(self) -> Iterator[Arrival]:
        rng = self._rng()
        now = 0.0
        while True:
            now += rng.expovariate(self.rate)
            if now >= self.duration:
                return
            yield Arrival(now, self.fn)


class MmppSource(_SeededSource):
    """2-state Markov-modulated Poisson process (bursty traffic).

    The source alternates between a *calm* state (``low_rate``) and a
    *burst* state (``high_rate``); dwell times in each state are
    exponential. This is the classic bursty-arrival model: long quiet
    stretches punctuated by intense activity — exactly the shape that
    makes keep-alive policy choice matter.
    """

    def __init__(
        self,
        low_rate: float,
        high_rate: float,
        duration: float,
        calm_dwell: float = 240.0,
        burst_dwell: float = 30.0,
        fn: str = "fn",
        seed: int = 2022,
        name: Optional[str] = None,
    ) -> None:
        if low_rate < 0 or high_rate <= 0:
            raise ValueError("rates must be non-negative (high_rate positive)")
        if calm_dwell <= 0 or burst_dwell <= 0:
            raise ValueError("dwell times must be positive")
        super().__init__(name or f"mmpp/{fn}", fn, seed, duration)
        self.low_rate = low_rate
        self.high_rate = high_rate
        self.calm_dwell = calm_dwell
        self.burst_dwell = burst_dwell

    def events(self) -> Iterator[Arrival]:
        rng = self._rng()
        now = 0.0
        bursting = False
        state_end = rng.expovariate(1.0 / self.calm_dwell)
        while now < self.duration:
            rate = self.high_rate if bursting else self.low_rate
            if rate <= 0:
                now = state_end
            else:
                gap = rng.expovariate(rate)
                if now + gap < state_end:
                    now += gap
                    if now >= self.duration:
                        return
                    yield Arrival(now, self.fn)
                    continue
                now = state_end
            bursting = not bursting
            dwell = self.burst_dwell if bursting else self.calm_dwell
            state_end = now + rng.expovariate(1.0 / dwell)


class DiurnalSource(_SeededSource):
    """Non-homogeneous Poisson with a sinusoidal (diurnal) rate.

    ``rate(t) = base_rate * (1 + amplitude * sin(2*pi*(t - phase)/period))``
    sampled by Lewis-Shedler thinning against the peak rate, so the draw
    sequence is independent of how the caller consumes the stream.
    """

    def __init__(
        self,
        base_rate: float,
        duration: float,
        amplitude: float = 0.8,
        period: float = 86400.0,
        phase: float = 0.0,
        fn: str = "fn",
        seed: int = 2022,
        name: Optional[str] = None,
    ) -> None:
        if base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if period <= 0:
            raise ValueError("period must be positive")
        super().__init__(name or f"diurnal/{fn}", fn, seed, duration)
        self.base_rate = base_rate
        self.amplitude = amplitude
        self.period = period
        self.phase = phase

    def rate_at(self, t: float) -> float:
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * (t - self.phase) / self.period)
        )

    def events(self) -> Iterator[Arrival]:
        rng = self._rng()
        peak = self.base_rate * (1.0 + self.amplitude)
        now = 0.0
        while True:
            now += rng.expovariate(peak)
            if now >= self.duration:
                return
            if rng.random() <= self.rate_at(now) / peak:
                yield Arrival(now, self.fn)


class HeavyTailSource(_SeededSource):
    """Renewal process with Pareto (heavy-tailed) inter-arrival times.

    Azure's production traces show per-function inter-arrival times far
    heavier-tailed than exponential: most gaps are short, but the tail
    stretches to hours. ``alpha`` controls the tail (smaller = heavier;
    must be > 1 so the mean exists); gaps are scaled so their mean equals
    ``mean_gap``.
    """

    def __init__(
        self,
        mean_gap: float,
        duration: float,
        alpha: float = 1.6,
        fn: str = "fn",
        seed: int = 2022,
        name: Optional[str] = None,
    ) -> None:
        if mean_gap <= 0:
            raise ValueError("mean_gap must be positive")
        if alpha <= 1.0:
            raise ValueError("alpha must exceed 1 (finite mean)")
        super().__init__(name or f"heavytail/{fn}", fn, seed, duration)
        self.mean_gap = mean_gap
        self.alpha = alpha
        # paretovariate(alpha) has mean alpha/(alpha-1); rescale to mean_gap.
        self._scale = mean_gap * (alpha - 1.0) / alpha

    def events(self) -> Iterator[Arrival]:
        rng = self._rng()
        now = 0.0
        while True:
            now += self._scale * rng.paretovariate(self.alpha)
            if now >= self.duration:
                return
            yield Arrival(now, self.fn)


class ModulatedSource(_SeededSource):
    """Thin an inner source by a time-varying acceptance profile.

    Used to give heavy-tailed fleet functions a diurnal envelope: each
    candidate arrival of ``inner`` survives with probability
    ``profile(t)`` in [0, 1], drawn from this source's own stream, so the
    inner source's draws stay untouched.
    """

    def __init__(
        self,
        inner: ArrivalSource,
        profile: Callable[[float], float],
        seed: int = 2022,
        name: Optional[str] = None,
    ) -> None:
        self.inner = inner
        self.profile = profile
        self.name = name or f"modulated/{inner.name}"
        self.fn = getattr(inner, "fn", "fn")
        self.seed = seed
        self.duration = getattr(inner, "duration", math.inf)

    def _rng(self) -> random.Random:
        return random.Random(derive_stream_seed(self.seed, self.name))

    def __iter__(self) -> Iterator[Arrival]:
        return self.events()

    def events(self) -> Iterator[Arrival]:
        rng = self._rng()
        for arrival in self.inner.events():
            keep = self.profile(arrival.time)
            if keep >= 1.0 or rng.random() < keep:
                yield arrival


def zipf_weights(count: int, s: float = 1.1) -> list[float]:
    """Zipf popularity weights for ranks 1..count, normalized to sum 1."""
    if count <= 0:
        raise ValueError("count must be positive")
    if s < 0:
        raise ValueError("s must be non-negative")
    raw = [1.0 / (rank**s) for rank in range(1, count + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def merge_sources(sources: Iterable[ArrivalSource]) -> Iterator[Arrival]:
    """Lazy k-way merge of time-ordered sources into one ordered stream.

    Ties break by source position (stable), so the merged order is
    deterministic. Memory is O(k), not O(events).
    """
    keyed = (
        ((arrival.time, index, arrival) for arrival in source.events())
        for index, source in enumerate(sources)
    )
    for _, _, arrival in heapq.merge(*keyed):
        yield arrival


@dataclass
class FleetParams:
    """Shape of the synthetic Azure-style fleet."""

    functions: int = 24
    duration: float = 86400.0           # one simulated day
    total_rate: float = 1.0             # fleet-wide mean arrivals/second
    zipf_s: float = 1.1                 # per-function popularity skew
    heavy_tail_alpha: float = 1.6       # inter-arrival tail (smaller = heavier)
    pattern: str = "diurnal"            # "diurnal" | "bursty" | "flat"
    diurnal_amplitude: float = 0.8
    diurnal_period: float = 86400.0
    burst_high_factor: float = 12.0     # bursty: burst rate vs calm rate
    burst_calm_dwell: float = 1800.0
    burst_burst_dwell: float = 120.0
    seed: int = 2022

    def __post_init__(self) -> None:
        if self.functions <= 0:
            raise ValueError("functions must be positive")
        if self.total_rate <= 0:
            raise ValueError("total_rate must be positive")
        if self.pattern not in ("diurnal", "bursty", "flat"):
            raise ValueError(f"unknown pattern {self.pattern!r}")

    def function_names(self) -> list[str]:
        width = len(str(self.functions - 1))
        return [f"fn-{index:0{width}d}" for index in range(self.functions)]


class SyntheticFleet:
    """Azure-Functions-style synthetic fleet sampler.

    Per-function popularity is Zipf (a few hot functions, a long cold
    tail); per-function inter-arrival times are heavy-tailed Pareto
    renewals; the whole fleet is modulated by a diurnal sinusoid or an
    MMPP-style burst profile depending on ``params.pattern``. Every
    function owns derived, restartable streams, so any subset of the fleet
    can be regenerated identically in any process.
    """

    def __init__(self, params: FleetParams) -> None:
        self.params = params
        self.weights = zipf_weights(params.functions, params.zipf_s)

    def function_names(self) -> list[str]:
        return self.params.function_names()

    def mean_rate(self, fn_index: int) -> float:
        return self.params.total_rate * self.weights[fn_index]

    def source(self, fn_index: int) -> ArrivalSource:
        """The arrival source for one function of the fleet."""
        params = self.params
        fn = params.function_names()[fn_index]
        rate = self.mean_rate(fn_index)
        if params.pattern == "flat":
            return HeavyTailSource(
                mean_gap=1.0 / rate,
                duration=params.duration,
                alpha=params.heavy_tail_alpha,
                fn=fn,
                seed=params.seed,
                name=f"fleet/{fn}/arrivals",
            )
        if params.pattern == "diurnal":
            # Heavy-tailed renewals at the peak-hour gap, thinned by the
            # diurnal profile: the survivor process keeps the heavy tail
            # while its rate follows the day curve.
            amplitude = params.diurnal_amplitude
            peak = rate * (1.0 + amplitude)
            inner = HeavyTailSource(
                mean_gap=1.0 / peak,
                duration=params.duration,
                alpha=params.heavy_tail_alpha,
                fn=fn,
                seed=params.seed,
                name=f"fleet/{fn}/arrivals",
            )

            def profile(t: float, _peak=peak, _rate=rate, _amp=amplitude) -> float:
                wanted = _rate * (
                    1.0 + _amp * math.sin(2.0 * math.pi * t / params.diurnal_period)
                )
                return wanted / _peak

            return ModulatedSource(
                inner, profile, seed=params.seed, name=f"fleet/{fn}/diurnal"
            )
        # bursty: MMPP around the target mean rate. Mean of the MMPP is
        # (calm*calm_dwell + burst*burst_dwell) / (calm_dwell + burst_dwell);
        # solve for the calm rate given the burst factor.
        dwell_total = params.burst_calm_dwell + params.burst_burst_dwell
        calm = (
            rate
            * dwell_total
            / (params.burst_calm_dwell + params.burst_high_factor * params.burst_burst_dwell)
        )
        return MmppSource(
            low_rate=calm,
            high_rate=params.burst_high_factor * calm,
            duration=params.duration,
            calm_dwell=params.burst_calm_dwell,
            burst_dwell=params.burst_burst_dwell,
            fn=fn,
            seed=params.seed,
            name=f"fleet/{fn}/arrivals",
        )

    def sources(self) -> list[ArrivalSource]:
        return [self.source(index) for index in range(self.params.functions)]

    def merged(self) -> Iterator[Arrival]:
        return merge_sources(self.sources())


def trace_digest(source: ArrivalSource, limit: Optional[int] = None) -> str:
    """SHA-256 over the exact (time, fn) reprs — the byte-identity oracle."""
    import hashlib

    digest = hashlib.sha256()
    for index, arrival in enumerate(source.events()):
        if limit is not None and index >= limit:
            break
        digest.update(f"{arrival.time!r}:{arrival.fn}\n".encode())
    return digest.hexdigest()


def as_trace_events(
    source: ArrivalSource, request_class, payload: bytes = b""
) -> Iterator:
    """Adapt an arrival stream to the open-loop generator's streaming path.

    Yields :class:`repro.workloads.TraceEvent` lazily — the whole point of
    the streaming protocol is that a day of fleet traffic is never held in
    memory, so do not wrap the result in ``list`` for large sources.
    """
    from ..workloads.generators import TraceEvent

    for arrival in source.events():
        yield TraceEvent(time=arrival.time, request_class=request_class, payload=payload)
