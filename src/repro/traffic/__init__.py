"""repro.traffic — fleet-scale trace-driven traffic + keep-alive policy lab.

Three layers:

* :mod:`~repro.traffic.arrivals` — streaming, restartable arrival processes
  (Poisson, MMPP/bursty, diurnal, Azure-style synthetic fleet with Zipf
  popularity and heavy-tailed inter-arrivals) on named derived RNG streams;
* :mod:`~repro.traffic.keepalive` — keep-alive / pre-warm policies (fixed
  window, KPA baseline, hybrid histogram, pinned min-scale) pluggable into
  both the fleet simulator and the DES autoscaler;
* :mod:`~repro.traffic.economics` + :mod:`~repro.traffic.fleet` — cold-start
  economics accounting and the multiprocessing (plane x policy) cell
  runner behind ``spright-repro traffic``.
"""

from .arrivals import (
    Arrival,
    ArrivalSource,
    DiurnalSource,
    FleetParams,
    HeavyTailSource,
    MmppSource,
    ModulatedSource,
    PoissonSource,
    SyntheticFleet,
    as_trace_events,
    merge_sources,
    trace_digest,
    zipf_weights,
)
from .economics import (
    DesTrafficAccountant,
    EconomicsLedger,
    FunctionEconomics,
    SloPolicy,
)
from .fleet import (
    PLANE_PROFILES,
    CellResult,
    CellSpec,
    PlaneProfile,
    build_specs,
    publish_results,
    run_cells,
    simulate_cell,
)
from .keepalive import (
    POLICIES,
    FixedWindowKeepAlive,
    HistogramKeepAlive,
    KeepAlivePolicy,
    KpaKeepAlive,
    PinnedKeepAlive,
    WarmPlan,
    make_policy,
)

__all__ = [
    "Arrival",
    "ArrivalSource",
    "CellResult",
    "CellSpec",
    "DesTrafficAccountant",
    "DiurnalSource",
    "EconomicsLedger",
    "FixedWindowKeepAlive",
    "FleetParams",
    "FunctionEconomics",
    "HeavyTailSource",
    "HistogramKeepAlive",
    "KeepAlivePolicy",
    "KpaKeepAlive",
    "MmppSource",
    "ModulatedSource",
    "PLANE_PROFILES",
    "POLICIES",
    "PinnedKeepAlive",
    "PlaneProfile",
    "PoissonSource",
    "SloPolicy",
    "SyntheticFleet",
    "WarmPlan",
    "as_trace_events",
    "build_specs",
    "make_policy",
    "merge_sources",
    "publish_results",
    "run_cells",
    "simulate_cell",
    "trace_digest",
    "zipf_weights",
]
