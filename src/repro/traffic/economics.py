"""Cold-start economics: what a keep-alive policy actually costs.

Accounts, per function and per cell, the quantities the policy literature
argues about: cold-start counts and latency penalty, wasted warm pod-seconds
(pods idle-but-warm), the CPU-seconds those idle pods burned (plane
dependent — the crux of SPRIGHT's advantage), goodput, and SLO attainment.

Two producers feed the same ledger type:

* the lightweight fleet simulator (:mod:`repro.traffic.fleet`), per cell;
* a DES run via :class:`DesTrafficAccountant`, which mirrors the
  autoscaler's ``autoscale/*`` accounting into ``traffic/*`` metrics —
  the reconciliation a test asserts to be exact.

Ledgers merge associatively (the fleet runner shards cells across worker
processes and folds the results), and publishing into a
:class:`repro.obs.MetricsRegistry` is deterministic: sorted function order,
counters before gauges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class SloPolicy:
    """A latency objective: a request 'attains' if latency <= threshold."""

    threshold_s: float = 0.25

    def __post_init__(self) -> None:
        if self.threshold_s <= 0:
            raise ValueError("threshold_s must be positive")

    def attained(self, latency_s: float) -> bool:
        return latency_s <= self.threshold_s


@dataclass
class FunctionEconomics:
    """Per-function tallies."""

    requests: int = 0
    cold_starts: int = 0
    warm_starts: int = 0
    cold_penalty_s: float = 0.0       # summed cold-start latency paid
    wasted_warm_pod_s: float = 0.0    # pod-seconds warm but idle
    wasted_warm_cpu_s: float = 0.0    # CPU-seconds those idle pods burned
    busy_pod_s: float = 0.0           # pod-seconds actually serving
    slo_hits: int = 0

    def merge(self, other: "FunctionEconomics") -> None:
        self.requests += other.requests
        self.cold_starts += other.cold_starts
        self.warm_starts += other.warm_starts
        self.cold_penalty_s += other.cold_penalty_s
        self.wasted_warm_pod_s += other.wasted_warm_pod_s
        self.wasted_warm_cpu_s += other.wasted_warm_cpu_s
        self.busy_pod_s += other.busy_pod_s
        self.slo_hits += other.slo_hits


@dataclass
class EconomicsLedger:
    """Cold-start economics for one simulation cell (or one DES run)."""

    slo: SloPolicy = field(default_factory=SloPolicy)
    per_fn: dict[str, FunctionEconomics] = field(default_factory=dict)

    def fn(self, name: str) -> FunctionEconomics:
        entry = self.per_fn.get(name)
        if entry is None:
            entry = FunctionEconomics()
            self.per_fn[name] = entry
        return entry

    # -- recording -----------------------------------------------------------
    def record_request(
        self, fn: str, latency_s: float, cold: bool, penalty_s: float = 0.0
    ) -> None:
        entry = self.fn(fn)
        entry.requests += 1
        if cold:
            entry.cold_starts += 1
            entry.cold_penalty_s += penalty_s
        else:
            entry.warm_starts += 1
        if self.slo.attained(latency_s):
            entry.slo_hits += 1

    def record_warm_idle(
        self, fn: str, pod_seconds: float, idle_cpu_frac: float
    ) -> None:
        if pod_seconds <= 0:
            return
        entry = self.fn(fn)
        entry.wasted_warm_pod_s += pod_seconds
        entry.wasted_warm_cpu_s += pod_seconds * idle_cpu_frac

    def record_busy(self, fn: str, pod_seconds: float) -> None:
        if pod_seconds > 0:
            self.fn(fn).busy_pod_s += pod_seconds

    # -- aggregation ---------------------------------------------------------
    def total(self) -> FunctionEconomics:
        out = FunctionEconomics()
        for name in sorted(self.per_fn):
            out.merge(self.per_fn[name])
        return out

    def merge(self, other: "EconomicsLedger") -> None:
        for name in sorted(other.per_fn):
            self.fn(name).merge(other.per_fn[name])

    def slo_attainment(self) -> float:
        total = self.total()
        if total.requests == 0:
            return float("nan")
        return total.slo_hits / total.requests

    def goodput(self, duration_s: float) -> float:
        """SLO-attaining requests per second over the cell's duration."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        return self.total().slo_hits / duration_s

    # -- metrics export ------------------------------------------------------
    def publish(self, registry, prefix: str = "traffic") -> None:
        """Write the ledger as ``<prefix>/*`` metrics (deterministic order)."""
        for name in sorted(self.per_fn):
            entry = self.per_fn[name]
            base = f"{prefix}/{name}"
            registry.counter(f"{base}/requests").incr(entry.requests)
            registry.counter(f"{base}/cold_starts").incr(entry.cold_starts)
            registry.counter(f"{base}/warm_starts").incr(entry.warm_starts)
            registry.counter(f"{base}/slo_hits").incr(entry.slo_hits)
            registry.gauge(f"{base}/cold_penalty_s").add(entry.cold_penalty_s)
            registry.gauge(f"{base}/wasted_warm_pod_s").add(entry.wasted_warm_pod_s)
            registry.gauge(f"{base}/wasted_warm_cpu_s").add(entry.wasted_warm_cpu_s)
            registry.gauge(f"{base}/busy_pod_s").add(entry.busy_pod_s)
        total = self.total()
        registry.counter(f"{prefix}/total/requests").incr(total.requests)
        registry.counter(f"{prefix}/total/cold_starts").incr(total.cold_starts)
        registry.gauge(f"{prefix}/total/wasted_warm_pod_s").add(total.wasted_warm_pod_s)
        registry.gauge(f"{prefix}/total/wasted_warm_cpu_s").add(total.wasted_warm_cpu_s)


#: The ledger fields published per function, split by metric kind — also
#: the row shape :func:`rows_from_registry` reconstructs for the dashboard.
_COUNTER_FIELDS = ("requests", "cold_starts", "warm_starts", "slo_hits")
_GAUGE_FIELDS = (
    "cold_penalty_s",
    "wasted_warm_pod_s",
    "wasted_warm_cpu_s",
    "busy_pod_s",
)


def rows_from_registry(registry, prefix: str = "traffic") -> list[dict]:
    """Reconstruct per-function economics rows from ``<prefix>/*`` metrics.

    The inverse of :meth:`EconomicsLedger.publish`, used by the live
    dashboard: it reads whatever a ledger (or accountant) has published
    into a node's registry and renders it as sorted row dicts — purely a
    read, so it is safe inside the passive observer hook. Functions with no
    published metrics yield no rows; the ``total`` row comes last when
    present.
    """
    per_fn: dict[str, dict] = {}
    for name in registry.names():
        parts = name.split("/")
        if len(parts) != 3 or parts[0] != prefix:
            continue
        metric = registry.find(name)
        _, fn, field_name = parts
        if field_name in _COUNTER_FIELDS or field_name in _GAUGE_FIELDS:
            row = per_fn.setdefault(fn, {"function": fn})
            row[field_name] = metric.value
    names = sorted(n for n in per_fn if n != "total")
    if "total" in per_fn:
        names.append("total")
    rows = []
    for fn in names:
        row = per_fn[fn]
        requests = row.get("requests", 0)
        slo_hits = row.get("slo_hits", 0)
        if requests:
            row["slo_attainment"] = slo_hits / requests
        rows.append(row)
    return rows


class DesTrafficAccountant:
    """Mirror a DES run's autoscaler accounting into ``traffic/*`` metrics.

    The autoscaler and deployments are the source of truth for cold starts
    (``Deployment.cold_starts``, published as ``autoscale/<fn>/cold_starts``
    counters) and idle warm capacity (``Autoscaler.idle_pod_seconds``,
    published as ``autoscale/<fn>/idle_pod_seconds`` gauges).
    :meth:`publish` copies those *same numbers* into a
    :class:`EconomicsLedger` and the ``traffic/*`` namespace, so the two
    namespaces reconcile exactly — asserted in ``tests/test_traffic.py``.

    Entirely passive: attaching one performs no RNG draws and schedules no
    simulation events, so runs without it are byte-identical.
    """

    def __init__(
        self,
        node,
        plane,
        autoscaler=None,
        idle_cpu_frac: float = 0.0,
        slo: Optional[SloPolicy] = None,
    ) -> None:
        self.node = node
        self.plane = plane
        self.autoscaler = autoscaler
        self.idle_cpu_frac = idle_cpu_frac
        self.ledger = EconomicsLedger(slo=slo or SloPolicy())

    def publish(self) -> EconomicsLedger:
        for name in sorted(self.plane.deployments):
            deployment = self.plane.deployments[name]
            entry = self.ledger.fn(name)
            entry.cold_starts += deployment.cold_starts
            if self.autoscaler is not None:
                self.ledger.record_warm_idle(
                    name,
                    self.autoscaler.idle_pod_seconds(name),
                    self.idle_cpu_frac,
                )
        self.ledger.publish(self.node.obs.registry)
        return self.ledger
