"""Keep-alive / pre-warm policies: when does a warm pod stay warm?

"The High Cost of Keeping Warm" shows the keep-alive policy dominates
serverless overhead at fleet scale: keep pods warm too briefly and every
burst pays a cold start; too long and the fleet burns idle CPU. This module
gives the reproduction a policy *lab*: four policies behind one interface,
consumable both by the lightweight fleet simulator (:mod:`repro.traffic.fleet`)
and by the DES autoscaler (:class:`repro.runtime.Autoscaler` accepts a
policy via ``register(..., keepalive=...)``).

Every policy decision is appended to ``self.decisions`` and hashed by
:meth:`KeepAlivePolicy.decision_digest`, so "same seed => byte-identical
keep-alive decisions" is a testable property, and the parallel fleet runner
can prove it made exactly the decisions the serial run made.
"""

from __future__ import annotations

import hashlib
import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class WarmPlan:
    """What happens to a function's pod after a request finishes at ``t``.

    * the pod stays warm until ``warm_until`` (idle-but-ready);
    * if ``prewarm_at`` is set, the pod is re-created ahead of the predicted
      next arrival and held warm during ``[prewarm_at, prewarm_until]``.

    An arrival inside either window is a warm start; outside both it pays a
    cold start.
    """

    warm_until: float
    prewarm_at: Optional[float] = None
    prewarm_until: Optional[float] = None

    def is_warm_at(self, t: float) -> bool:
        if t <= self.warm_until:
            return True
        if self.prewarm_at is not None and self.prewarm_until is not None:
            return self.prewarm_at <= t <= self.prewarm_until
        return False

    def warm_idle_seconds(self, start: float, next_arrival: float) -> float:
        """Idle warm pod-seconds accrued between ``start`` and the next hit."""
        idle = max(0.0, min(next_arrival, self.warm_until) - start)
        if self.prewarm_at is not None and self.prewarm_until is not None:
            lo = max(self.prewarm_at, self.warm_until, start)
            hi = min(next_arrival, self.prewarm_until)
            if hi > lo:
                idle += hi - lo
        return idle


class KeepAlivePolicy:
    """Base policy: subclasses decide the warm window after each request."""

    name = "base"

    def __init__(self) -> None:
        self.decisions: list[tuple] = []

    # -- fleet/DES interface -------------------------------------------------
    def min_warm(self, fn: str) -> int:
        """Pods this policy refuses to scale below (pinned warm capacity)."""
        return 0

    def observe_gap(self, fn: str, gap: float) -> None:
        """Feed one observed idle gap (arrival-to-arrival) for ``fn``."""

    def plan_after(self, fn: str, t: float) -> WarmPlan:
        """Commit the warm plan for ``fn`` after activity ending at ``t``."""
        plan = self._plan(fn, t)
        self.decisions.append(
            (fn, round(t, 9), plan.warm_until, plan.prewarm_at, plan.prewarm_until)
        )
        return plan

    def _plan(self, fn: str, t: float) -> WarmPlan:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- determinism oracle --------------------------------------------------
    def decision_digest(self) -> str:
        digest = hashlib.sha256()
        for decision in self.decisions:
            digest.update(repr(decision).encode())
            digest.update(b"\n")
        return digest.hexdigest()


class FixedWindowKeepAlive(KeepAlivePolicy):
    """Industry default: keep the pod warm for a fixed window after use."""

    name = "fixed"

    def __init__(self, window: float = 600.0) -> None:
        super().__init__()
        if window < 0:
            raise ValueError("window must be non-negative")
        self.window = window

    def _plan(self, fn: str, t: float) -> WarmPlan:
        return WarmPlan(warm_until=t + self.window)


class KpaKeepAlive(KeepAlivePolicy):
    """Knative KPA baseline: scale-to-zero after the grace period.

    The autoscaler only reaps on its tick grid, so the effective warm
    window is the grace period rounded *up* to the next tick — exactly the
    behaviour the DES autoscaler exhibits with ``scale_to_zero=True``.
    """

    name = "kpa"

    def __init__(self, grace_period: float = 30.0, tick_interval: float = 2.0) -> None:
        super().__init__()
        if grace_period < 0 or tick_interval <= 0:
            raise ValueError("need grace_period >= 0 and tick_interval > 0")
        self.grace_period = grace_period
        self.tick_interval = tick_interval

    def _plan(self, fn: str, t: float) -> WarmPlan:
        horizon = t + self.grace_period
        ticks = math.ceil(horizon / self.tick_interval)
        return WarmPlan(warm_until=ticks * self.tick_interval)


class HistogramKeepAlive(KeepAlivePolicy):
    """Hybrid histogram policy ("Serverless in the Wild"-style).

    Tracks a per-function histogram of idle gaps on fixed log-spaced
    bounds. Once a function has ``min_samples`` observations, the pod is
    released after a short linger and *pre-warmed* over the predicted
    next-arrival window ``[p_low*(1-margin), p_high*(1+margin)]``; before
    that, it falls back to a fixed keep-alive window. Fixed bounds keep the
    histogram shape — and so every decision — independent of sample order
    beyond the counts themselves.
    """

    name = "histogram"

    _BOUNDS = tuple(0.5 * (2.0**index) for index in range(24))  # 0.5 s .. ~48 d

    def __init__(
        self,
        low_quantile: float = 0.05,
        high_quantile: float = 0.99,
        margin: float = 0.10,
        linger: float = 10.0,
        min_samples: int = 8,
        fallback_window: float = 600.0,
    ) -> None:
        super().__init__()
        if not 0.0 < low_quantile < high_quantile <= 1.0:
            raise ValueError("need 0 < low_quantile < high_quantile <= 1")
        if margin < 0 or linger < 0 or fallback_window < 0:
            raise ValueError("margin/linger/fallback_window must be non-negative")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.low_quantile = low_quantile
        self.high_quantile = high_quantile
        self.margin = margin
        self.linger = linger
        self.min_samples = min_samples
        self.fallback_window = fallback_window
        self._counts: dict[str, list[int]] = {}
        self._samples: dict[str, int] = {}

    def observe_gap(self, fn: str, gap: float) -> None:
        counts = self._counts.get(fn)
        if counts is None:
            counts = [0] * (len(self._BOUNDS) + 1)
            self._counts[fn] = counts
        counts[bisect_left(self._BOUNDS, gap)] += 1
        self._samples[fn] = self._samples.get(fn, 0) + 1

    def _quantile(self, fn: str, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile gap."""
        counts = self._counts[fn]
        total = self._samples[fn]
        target = q * total
        running = 0
        for index, bucket in enumerate(counts):
            running += bucket
            if running >= target:
                if index < len(self._BOUNDS):
                    return self._BOUNDS[index]
                return 2.0 * self._BOUNDS[-1]
        return 2.0 * self._BOUNDS[-1]

    def _plan(self, fn: str, t: float) -> WarmPlan:
        if self._samples.get(fn, 0) < self.min_samples:
            return WarmPlan(warm_until=t + self.fallback_window)
        low = self._quantile(fn, self.low_quantile) * (1.0 - self.margin)
        high = self._quantile(fn, self.high_quantile) * (1.0 + self.margin)
        if low <= self.linger:
            # Predicted gap shorter than the linger: just keep warm through
            # the predicted window — pre-warming would overlap the linger.
            return WarmPlan(warm_until=t + max(high, self.linger))
        return WarmPlan(
            warm_until=t + self.linger,
            prewarm_at=t + low,
            prewarm_until=t + high,
        )


class PinnedKeepAlive(KeepAlivePolicy):
    """SPRIGHT's stance: never scale below ``min_scale`` — always warm.

    Affordable on S-SPRIGHT because an idle event-driven pod burns no CPU
    (§4.2.2); ruinous on sidecar planes, which is the fleet-scale story the
    traffic table quantifies.
    """

    name = "pinned"

    def __init__(self, min_scale: int = 1) -> None:
        super().__init__()
        if min_scale < 1:
            raise ValueError("min_scale must be >= 1")
        self.min_scale = min_scale

    def min_warm(self, fn: str) -> int:
        return self.min_scale

    def _plan(self, fn: str, t: float) -> WarmPlan:
        return WarmPlan(warm_until=math.inf)


POLICIES = {
    "fixed": FixedWindowKeepAlive,
    "kpa": KpaKeepAlive,
    "histogram": HistogramKeepAlive,
    "pinned": PinnedKeepAlive,
}


def make_policy(name: str, **kwargs) -> KeepAlivePolicy:
    """Instantiate a registered policy by name (fresh state per call)."""
    cls = POLICIES.get(name)
    if cls is None:
        raise KeyError(f"unknown keep-alive policy {name!r}; choose from {sorted(POLICIES)}")
    return cls(**kwargs)
