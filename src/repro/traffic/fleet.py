"""Fleet runner: (plane x policy) cells over synthetic fleet traffic.

Running the full packet-level DES for a simulated *day* of fleet traffic is
wall-clock-prohibitive, and unnecessary: cold-start economics depend on
arrival times, warm windows, and a handful of per-plane constants — not on
per-packet descriptor hops. Each *cell* here is therefore a lightweight,
exact event-walk over one (plane, keep-alive policy) pair: per function,
iterate its arrival stream, track the warm window the policy commits,
charge cold-start penalties and idle warm CPU, and fold everything into an
:class:`~repro.traffic.economics.EconomicsLedger`.

Cells are fully independent and deterministic from derived seeds, so
:func:`run_cells` shards them across worker processes with
``multiprocessing`` and the merged output is byte-identical to serial
execution (a test asserts exactly that).

Per-plane constants (:class:`PlaneProfile`) tie back to the repo's DES cost
model: cold-start latency is the kubelet's lognormal
(``NodeConfig.pod_startup_mean/cv``), per-request overhead comes from the
§3.2.2 spot measurements the DES reproduces, and idle warm-pod CPU encodes
the paper's central claim — sidecar pods burn CPU while idle, S-SPRIGHT's
event-driven pods do not, D-SPRIGHT's dedicated spin cores always do.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import random
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..kernel import NodeConfig
from ..simcore import derive_stream_seed
from ..stats import summarize
from .arrivals import FleetParams, SyntheticFleet
from .economics import EconomicsLedger, SloPolicy
from .keepalive import POLICIES, KeepAlivePolicy, make_policy

_DEFAULTS = NodeConfig()


@dataclass(frozen=True)
class PlaneProfile:
    """The constants of one dataplane that cold-start economics see."""

    name: str
    cold_start_mean: float          # seconds; kubelet pod-startup lognormal
    cold_start_cv: float
    per_request_overhead: float     # seconds; §3.2.2 response-delay band
    idle_pod_cpu_frac: float        # cores burned by one warm-but-idle pod


#: Calibrated against the DES: cold starts are the kubelet's startup
#: lognormal; per-request overheads sit in the §3.2.2 bands (S-SPRIGHT
#: 0.02-0.04 ms, D-SPRIGHT slightly lower, Knative ~6x higher, gRPC in
#: between); idle CPU encodes Fig 2 / §4.2.2 (queue-proxy sidecars burn CPU
#: while idle, S-SPRIGHT's event-driven pods burn none, D-SPRIGHT pins a
#: dedicated polling core per warm pod).
PLANE_PROFILES = {
    "knative": PlaneProfile(
        name="knative",
        cold_start_mean=_DEFAULTS.pod_startup_mean,
        cold_start_cv=_DEFAULTS.pod_startup_cv,
        per_request_overhead=1.8e-4,
        idle_pod_cpu_frac=0.05,
    ),
    "grpc": PlaneProfile(
        name="grpc",
        cold_start_mean=_DEFAULTS.pod_startup_mean,
        cold_start_cv=_DEFAULTS.pod_startup_cv,
        per_request_overhead=6.0e-5,
        idle_pod_cpu_frac=0.01,
    ),
    "s-spright": PlaneProfile(
        name="s-spright",
        cold_start_mean=_DEFAULTS.pod_startup_mean,
        cold_start_cv=_DEFAULTS.pod_startup_cv,
        per_request_overhead=3.0e-5,
        idle_pod_cpu_frac=0.0,
    ),
    "d-spright": PlaneProfile(
        name="d-spright",
        cold_start_mean=_DEFAULTS.pod_startup_mean,
        cold_start_cv=_DEFAULTS.pod_startup_cv,
        per_request_overhead=2.0e-5,
        idle_pod_cpu_frac=1.0,
    ),
}


@dataclass(frozen=True)
class CellSpec:
    """One (plane x policy) cell of the lab — picklable, fully determines
    the cell's output given nothing but itself."""

    plane: str
    policy: str
    fleet: FleetParams
    slo: SloPolicy = field(default_factory=SloPolicy)
    service_time_mean: float = 0.010
    service_time_cv: float = 0.30

    def __post_init__(self) -> None:
        if self.plane not in PLANE_PROFILES:
            raise ValueError(
                f"unknown plane {self.plane!r}; choose from {sorted(PLANE_PROFILES)}"
            )
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown keep-alive policy {self.policy!r}; "
                f"choose from {sorted(POLICIES)}"
            )
        if self.service_time_mean <= 0:
            raise ValueError("service_time_mean must be positive")

    def stream(self, suffix: str) -> str:
        return f"cell/{self.plane}/{self.policy}/{self.fleet.pattern}/{suffix}"


@dataclass
class CellResult:
    """Everything one cell produced."""

    plane: str
    policy: str
    pattern: str
    duration: float
    functions: int
    ledger: EconomicsLedger
    p50_ms: float
    p99_ms: float
    p999_ms: float
    decision_digest: str

    @property
    def requests(self) -> int:
        return self.ledger.total().requests

    @property
    def cold_starts(self) -> int:
        return self.ledger.total().cold_starts

    @property
    def cold_penalty_s(self) -> float:
        return self.ledger.total().cold_penalty_s

    @property
    def wasted_warm_pod_s(self) -> float:
        return self.ledger.total().wasted_warm_pod_s

    @property
    def wasted_warm_cpu_s(self) -> float:
        return self.ledger.total().wasted_warm_cpu_s

    @property
    def slo_attainment(self) -> float:
        return self.ledger.slo_attainment()

    @property
    def goodput(self) -> float:
        return self.ledger.goodput(self.duration)

    def digest(self) -> str:
        """Byte-identity oracle over the cell's economics + decisions."""
        digest = hashlib.sha256()
        digest.update(self.decision_digest.encode())
        for name in sorted(self.ledger.per_fn):
            digest.update(f"{name}:{self.ledger.per_fn[name]!r}\n".encode())
        digest.update(
            f"{self.p50_ms!r}:{self.p99_ms!r}:{self.p999_ms!r}".encode()
        )
        return digest.hexdigest()


def _lognormal(rng: random.Random, mean: float, cv: float) -> float:
    sigma2 = math.log(1.0 + cv * cv)
    mu = math.log(mean) - sigma2 / 2.0
    return rng.lognormvariate(mu, math.sqrt(sigma2))


def simulate_cell(spec: CellSpec) -> CellResult:
    """Run one (plane x policy) cell; pure function of its spec.

    Per function the walk is exact, not sampled: every arrival consults the
    warm plan the policy committed after the previous completion, charges a
    cold-start penalty when it misses the warm/prewarm windows, accrues the
    idle warm pod-seconds between completions, and commits the next plan.
    """
    profile = PLANE_PROFILES[spec.plane]
    fleet = SyntheticFleet(spec.fleet)
    policy: KeepAlivePolicy = make_policy(spec.policy)
    ledger = EconomicsLedger(slo=spec.slo)
    latencies: list[float] = []
    duration = spec.fleet.duration

    for fn_index, fn in enumerate(fleet.function_names()):
        source = fleet.source(fn_index)
        rng = random.Random(
            derive_stream_seed(spec.fleet.seed, spec.stream(f"{fn}/latency"))
        )
        pinned = policy.min_warm(fn) > 0
        # Pinned capacity is warm from t=0; everyone else starts cold.
        plan = policy.plan_after(fn, 0.0) if pinned else None
        prev_end = 0.0
        prev_arrival: Optional[float] = None
        for arrival in source.events():
            t = arrival.time
            if plan is not None:
                ledger.record_warm_idle(
                    fn,
                    plan.warm_idle_seconds(prev_end, t),
                    profile.idle_pod_cpu_frac,
                )
            if t < prev_end:
                # The pod is still serving the previous request: it exists,
                # so this arrival cannot cold-start regardless of the plan.
                warm = True
            elif plan is None:
                warm = False
            else:
                warm = plan.is_warm_at(t)
            penalty = 0.0
            if not warm:
                penalty = _lognormal(
                    rng, profile.cold_start_mean, profile.cold_start_cv
                )
            service = _lognormal(rng, spec.service_time_mean, spec.service_time_cv)
            latency = penalty + profile.per_request_overhead + service
            latencies.append(latency)
            ledger.record_request(fn, latency, cold=not warm, penalty_s=penalty)
            ledger.record_busy(fn, service)
            if prev_arrival is not None:
                policy.observe_gap(fn, t - prev_arrival)
            prev_arrival = t
            prev_end = max(prev_end, t + latency)
            plan = policy.plan_after(fn, prev_end)
        # Tail: warm window outlasting the trace still costs until the
        # horizon (pinned pods idle all day on a never-invoked function).
        if plan is not None:
            ledger.record_warm_idle(
                fn,
                plan.warm_idle_seconds(prev_end, duration),
                profile.idle_pod_cpu_frac,
            )

    if latencies:
        summary = summarize(latencies)
        p50, p99, p999 = (
            summary.p50 * 1e3,
            summary.p99 * 1e3,
            summary.p999 * 1e3,
        )
    else:
        p50 = p99 = p999 = float("nan")
    return CellResult(
        plane=spec.plane,
        policy=spec.policy,
        pattern=spec.fleet.pattern,
        duration=duration,
        functions=spec.fleet.functions,
        ledger=ledger,
        p50_ms=p50,
        p99_ms=p99,
        p999_ms=p999,
        decision_digest=policy.decision_digest(),
    )


def run_cells(specs: Sequence[CellSpec], processes: int = 1) -> list[CellResult]:
    """Run every cell, optionally sharded across worker processes.

    Results come back in spec order regardless of worker scheduling, and
    each cell is a pure function of its spec, so the parallel output is
    byte-identical to ``processes=1`` — the property the traffic-smoke CI
    job and the hypothesis suite both assert.
    """
    if processes < 1:
        raise ValueError("processes must be >= 1")
    if processes == 1 or len(specs) <= 1:
        return [simulate_cell(spec) for spec in specs]
    processes = min(processes, len(specs))
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    with context.Pool(processes) as pool:
        return pool.map(simulate_cell, list(specs))


def build_specs(
    planes: Sequence[str],
    policies: Sequence[str],
    fleet: FleetParams,
    patterns: Sequence[str] = ("diurnal", "bursty"),
    slo: Optional[SloPolicy] = None,
    service_time_mean: float = 0.010,
    service_time_cv: float = 0.30,
) -> list[CellSpec]:
    """The full lab grid: patterns x planes x policies, deterministic order."""
    slo = slo or SloPolicy()
    specs = []
    for pattern in patterns:
        shaped = replace(fleet, pattern=pattern)
        for plane in planes:
            for policy in policies:
                specs.append(
                    CellSpec(
                        plane=plane,
                        policy=policy,
                        fleet=shaped,
                        slo=slo,
                        service_time_mean=service_time_mean,
                        service_time_cv=service_time_cv,
                    )
                )
    return specs


def publish_results(results: Sequence[CellResult], registry) -> None:
    """Publish every cell's ledger under ``traffic/<pattern>/<plane>/<policy>``."""
    for result in results:
        prefix = f"traffic/{result.pattern}/{result.plane}/{result.policy}"
        result.ledger.publish(registry, prefix=prefix)
