"""SPRIGHT (SIGCOMM 2022) reproduction.

A full-node discrete-event simulation of the SPRIGHT serverless dataplane —
eBPF-based event-driven shared-memory processing — together with the
baselines it is evaluated against (Knative, direct gRPC) and every substrate
the paper depends on (a small working eBPF stack, DPDK-like shared memory,
a Knative-ish orchestration layer, byte-level protocol codecs).

Typical entry points::

    from repro.runtime import WorkerNode, FunctionSpec
    from repro.dataplane import SSprightDataplane, RequestClass
    from repro.experiments import fig5, boutique_exp   # paper artifacts

See README.md for the tour, DESIGN.md for the substitution rationale, and
EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"
__paper__ = (
    "SPRIGHT: Extracting the Server from Serverless Computing! "
    "High-performance eBPF-based Event-driven, Shared-memory Processing. "
    "Qi, Monis, Zeng, Wang, Ramakrishnan. SIGCOMM 2022."
)

from . import (
    audit,
    dataplane,
    experiments,
    kernel,
    mem,
    obs,
    protocols,
    runtime,
    simcore,
    stats,
    traffic,
    workloads,
)

__all__ = [
    "__paper__",
    "__version__",
    "audit",
    "dataplane",
    "experiments",
    "kernel",
    "mem",
    "obs",
    "protocols",
    "runtime",
    "simcore",
    "stats",
    "traffic",
    "workloads",
]
