"""Kernel operation vocabulary: one call = one audited, costed operation.

Components never hand-count overheads and never hand-charge CPU; they invoke
these operations, which atomically (a) increment the request's audit trace,
(b) charge the busy time to the component's CPU tag, and (c) impose the
latency on the caller (the returned event fires when the operation is done).
Keeping counting and costing in one place guarantees Tables 1/2 and the
performance results can never drift apart.

Observability (repro.obs) taps both halves of that atomicity: every charge
carries an operation name for the CPU profiler, and every audited count is
mirrored — under exactly the same trace-and-stage condition — into the
node's ``ops/<plane>/<kind>`` registry counters, which is what lets the
OpenMetrics export reconcile with the audit tables exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..audit import OverheadKind, RequestTrace, Stage
from .costs import CostModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore import CpuSet, Environment, Event


class KernelOps:
    """Audited kernel operations executed on behalf of one component."""

    def __init__(
        self,
        env: "Environment",
        cpu: "CpuSet",
        costs: CostModel,
        tag: str,
        faults=None,
        obs=None,
    ) -> None:
        self.env = env
        self.cpu = cpu
        self.costs = costs
        self.tag = tag
        # Duck-typed FaultInjector (or None): kernel transfer legs consult
        # it so Knative/gRPC paths — which move bytes as costed bundles,
        # not frames — see the same loss process as frame-level devices.
        self.faults = faults
        # Observability bundle (or None). The reference is only consulted
        # when detail is on, captured once here so the disabled path costs
        # a single attribute read per count.
        self.obs = obs if (obs is not None and obs.detailed) else None

    # -- internals ---------------------------------------------------------
    def _charge(self, seconds: float, tag: Optional[str] = None, op=None) -> "Event":
        return self.cpu.execute(seconds, tag or self.tag, op=op)

    def _count(
        self,
        trace: Optional[RequestTrace],
        stage: Optional[Stage],
        kind: OverheadKind,
        amount: int = 1,
    ) -> None:
        if trace is not None and stage is not None:
            trace.count(stage, kind, amount)
            if self.obs is not None:
                self.obs.count_kernel_op(self.tag, kind, amount)

    # -- audited operations ---------------------------------------------------
    def copy(
        self,
        nbytes: int,
        trace: Optional[RequestTrace] = None,
        stage: Optional[Stage] = None,
        tag: Optional[str] = None,
    ) -> "Event":
        """One data copy of ``nbytes`` (user<->kernel or kernel<->kernel)."""
        self._count(trace, stage, OverheadKind.COPY)
        return self._charge(self.costs.copy(nbytes), tag, op="copy")

    def context_switch(
        self,
        trace: Optional[RequestTrace] = None,
        stage: Optional[Stage] = None,
        tag: Optional[str] = None,
    ) -> "Event":
        self._count(trace, stage, OverheadKind.CONTEXT_SWITCH)
        return self._charge(self.costs.context_switch, tag, op="context_switch")

    def interrupt(
        self,
        trace: Optional[RequestTrace] = None,
        stage: Optional[Stage] = None,
        count: int = 1,
        tag: Optional[str] = None,
    ) -> "Event":
        self._count(trace, stage, OverheadKind.INTERRUPT, count)
        return self._charge(self.costs.interrupt * count, tag, op="interrupt")

    def protocol_processing(
        self,
        nbytes: int,
        trace: Optional[RequestTrace] = None,
        stage: Optional[Stage] = None,
        tag: Optional[str] = None,
    ) -> "Event":
        """One full protocol-stack traversal (TCP/IP + checksum + iptables)."""
        self._count(trace, stage, OverheadKind.PROTOCOL_PROCESSING)
        return self._charge(self.costs.protocol_processing(nbytes), tag, op="protocol")

    def serialize(
        self,
        nbytes: int,
        trace: Optional[RequestTrace] = None,
        stage: Optional[Stage] = None,
        tag: Optional[str] = None,
    ) -> "Event":
        self._count(trace, stage, OverheadKind.SERIALIZATION)
        return self._charge(self.costs.serialize(nbytes), tag, op="serialize")

    def deserialize(
        self,
        nbytes: int,
        trace: Optional[RequestTrace] = None,
        stage: Optional[Stage] = None,
        tag: Optional[str] = None,
    ) -> "Event":
        self._count(trace, stage, OverheadKind.DESERIALIZATION)
        return self._charge(self.costs.deserialize(nbytes), tag, op="deserialize")

    # -- uncounted mechanics (cost only) ---------------------------------------
    def syscall(self, tag: Optional[str] = None) -> "Event":
        return self._charge(self.costs.syscall, tag, op="syscall")

    def veth_hop(self, tag: Optional[str] = None) -> "Event":
        return self._charge(self.costs.veth_traversal, tag, op="veth")

    def nic_dma(self, tag: Optional[str] = None) -> "Event":
        return self._charge(self.costs.nic_dma, tag, op="nic_dma")

    def compute(self, seconds: float, tag: Optional[str] = None) -> "Event":
        """Application-level computation (function service time)."""
        return self._charge(seconds, tag, op="compute")

    def background(self, seconds: float, tag: Optional[str] = None) -> None:
        """CPU charged off the critical path (metrics, GC, bookkeeping)."""
        self.cpu.execute(seconds, tag or self.tag, op="background")

    def bundle(self) -> "OpBundle":
        """Accumulate several audited ops into one CPU charge.

        Counting still happens per operation (audit fidelity); only the CPU
        charge is coalesced, which keeps the event count per message hop
        small enough to simulate hundreds of thousands of requests.
        """
        return OpBundle(self)

    # -- composite operations used by multiple dataplanes ---------------------
    def socket_send(
        self,
        nbytes: int,
        trace: Optional[RequestTrace],
        stage: Optional[Stage],
        tag: Optional[str] = None,
    ):
        """``send()`` path: syscall + copy into the kernel + stack traversal.

        Generator: ``yield from ops.socket_send(...)`` from a process.
        """
        yield self.syscall(tag)
        yield self.copy(nbytes, trace, stage, tag)
        yield self.protocol_processing(nbytes, trace, stage, tag)

    def socket_recv(
        self,
        nbytes: int,
        trace: Optional[RequestTrace],
        stage: Optional[Stage],
        tag: Optional[str] = None,
    ):
        """``recv()`` path: interrupt + stack + copy to user + wakeup."""
        yield self.interrupt(trace, stage, tag=tag)
        yield self.protocol_processing(nbytes, trace, stage, tag)
        yield self.copy(nbytes, trace, stage, tag)
        yield self.context_switch(trace, stage, tag)


class OpBundle:
    """Accumulates audited operations, committing one combined CPU charge.

    When the CPU profiler is on, the bundle also keeps its per-operation
    breakdown so the coalesced charge still profiles as its constituents;
    with the profiler off, no breakdown is kept (zero overhead).
    """

    def __init__(self, ops: KernelOps) -> None:
        self.ops = ops
        self.seconds = 0.0
        profiling = ops.cpu.accounting.profiler is not None
        self._components: Optional[list[tuple[str, float]]] = [] if profiling else None

    def _add(self, op: str, seconds: float) -> None:
        self.seconds += seconds
        if self._components is not None:
            self._components.append((op, seconds))

    # Each method mirrors a KernelOps operation: count now, accumulate cost.
    def copy(self, nbytes: int, trace=None, stage=None) -> "OpBundle":
        self.ops._count(trace, stage, OverheadKind.COPY)
        self._add("copy", self.ops.costs.copy(nbytes))
        return self

    def context_switch(self, trace=None, stage=None, count: int = 1) -> "OpBundle":
        self.ops._count(trace, stage, OverheadKind.CONTEXT_SWITCH, count)
        self._add("context_switch", self.ops.costs.context_switch * count)
        return self

    def interrupt(self, trace=None, stage=None, count: int = 1) -> "OpBundle":
        self.ops._count(trace, stage, OverheadKind.INTERRUPT, count)
        self._add("interrupt", self.ops.costs.interrupt * count)
        return self

    def protocol_processing(self, nbytes: int, trace=None, stage=None, count: int = 1) -> "OpBundle":
        self.ops._count(trace, stage, OverheadKind.PROTOCOL_PROCESSING, count)
        self._add("protocol", self.ops.costs.protocol_processing(nbytes) * count)
        return self

    def serialize(self, nbytes: int, trace=None, stage=None) -> "OpBundle":
        self.ops._count(trace, stage, OverheadKind.SERIALIZATION)
        self._add("serialize", self.ops.costs.serialize(nbytes))
        return self

    def deserialize(self, nbytes: int, trace=None, stage=None) -> "OpBundle":
        self.ops._count(trace, stage, OverheadKind.DESERIALIZATION)
        self._add("deserialize", self.ops.costs.deserialize(nbytes))
        return self

    def syscall(self) -> "OpBundle":
        self._add("syscall", self.ops.costs.syscall)
        return self

    def compute(self, seconds: float) -> "OpBundle":
        self._add("compute", seconds)
        return self

    def commit(self, tag=None):
        """One CPU-charge event covering everything accumulated."""
        op = self._components if self._components is not None else "bundle"
        return self.ops._charge(self.seconds, tag, op=op)
