"""Kernel FIB (Forwarding Information Base) table.

The XDP/TC forwarding programs (§3.5) consult this table through the
``bpf_fib_lookup`` helper to map a packet's destination to an egress
interface, replacing the iptables-heavy kernel routing path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .packet import FiveTuple


@dataclass(frozen=True)
class FibEntry:
    dst_ip: str
    ifindex: int
    gateway: Optional[str] = None


class FibTable:
    """Host routes: destination IP -> egress ifindex (plus a default)."""

    def __init__(self) -> None:
        self._routes: dict[str, FibEntry] = {}
        self._default: Optional[FibEntry] = None
        self.lookup_count = 0

    def add_route(self, dst_ip: str, ifindex: int, gateway: Optional[str] = None) -> None:
        self._routes[dst_ip] = FibEntry(dst_ip=dst_ip, ifindex=ifindex, gateway=gateway)

    def set_default(self, ifindex: int, gateway: Optional[str] = None) -> None:
        self._default = FibEntry(dst_ip="0.0.0.0/0", ifindex=ifindex, gateway=gateway)

    def remove_route(self, dst_ip: str) -> None:
        if dst_ip not in self._routes:
            raise KeyError(f"no route for {dst_ip}")
        del self._routes[dst_ip]

    def lookup(self, flow: FiveTuple) -> Optional[int]:
        """Resolve the egress ifindex for a flow; None on total miss."""
        self.lookup_count += 1
        entry = self._routes.get(flow.dst_ip)
        if entry is not None:
            return entry.ifindex
        if self._default is not None:
            return self._default.ifindex
        return None

    def __len__(self) -> int:
        return len(self._routes)
