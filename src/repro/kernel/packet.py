"""Packet and message types flowing through the simulated node.

A :class:`Packet` models an L2/L3 frame (what NIC/XDP/TC/veth see); a
:class:`Message` models an L7 request/response payload (what functions and
gateways see). The audit framework hangs per-request counters off the
message so every copy/context switch/interrupt is attributable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_packet_ids = itertools.count(1)
_message_ids = itertools.count(1)


@dataclass
class FiveTuple:
    """IP 5-tuple used for FIB lookups and flow identity."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: str = "tcp"

    def key(self) -> tuple:
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.protocol)

    def reversed(self) -> "FiveTuple":
        return FiveTuple(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
            protocol=self.protocol,
        )


@dataclass
class Packet:
    """A raw frame: payload bytes plus flow metadata."""

    flow: FiveTuple
    payload: bytes = b""
    headers_len: int = 66  # Ethernet + IPv4 + TCP
    ingress_ifindex: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def size(self) -> int:
        return self.headers_len + len(self.payload)


@dataclass
class Message:
    """An L7 message travelling through a function chain.

    ``trace`` carries the audit record; ``topic`` drives DFR routing;
    ``chain_position`` tracks progress through the user-defined sequence.
    """

    payload: bytes
    topic: str = ""
    method: str = "GET"
    path: str = "/"
    content_type: str = "application/octet-stream"
    is_response: bool = False
    created_at: float = 0.0
    caller_id: Optional[str] = None
    chain_position: int = 0
    message_id: int = field(default_factory=lambda: next(_message_ids))
    trace: Optional[object] = None  # audit.RequestTrace, typed loosely to avoid cycle
    shm_handle: Optional[object] = None  # mem.BufferHandle when in shared memory

    @property
    def size(self) -> int:
        return len(self.payload)

    def child(self, payload: bytes, topic: str = "") -> "Message":
        """Derive a follow-on message that keeps trace/identity context."""
        return Message(
            payload=payload,
            topic=topic or self.topic,
            method=self.method,
            path=self.path,
            content_type=self.content_type,
            created_at=self.created_at,
            caller_id=self.caller_id,
            chain_position=self.chain_position,
            trace=self.trace,
            shm_handle=self.shm_handle,
        )
