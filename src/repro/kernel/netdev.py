"""Network devices: physical NIC and veth pairs, with eBPF attach points.

These exist so the §3.5 acceleration path is structurally real: an XDP hook
on the NIC RX path, TC hooks on the host-side veths, and a registry mapping
ifindexes to devices so ``XDP_REDIRECT``/``TC_ACT_REDIRECT`` verdicts can be
carried out (frame moved directly between devices, skipping the stack).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .ebpf import HookPoint, ProgramType, Vm
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore import Environment, Store


class DeviceRegistry:
    """ifindex -> device, for redirect verdict resolution.

    Also the seam where fault injection reaches the frame paths: the
    owning node points ``faults`` at its :class:`FaultInjector`, and every
    device consults it on RX/TX. ``faults`` stays ``None`` for registries
    built outside a node (unit tests), keeping devices standalone.
    """

    def __init__(self) -> None:
        self._devices: dict[int, "NetDevice"] = {}
        self._next_ifindex = 1
        self.faults = None  # set by WorkerNode; duck-typed FaultInjector

    def register(self, device: "NetDevice") -> int:
        ifindex = self._next_ifindex
        self._next_ifindex += 1
        self._devices[ifindex] = device
        return ifindex

    def get(self, ifindex: int) -> "NetDevice":
        device = self._devices.get(ifindex)
        if device is None:
            raise KeyError(f"no device with ifindex {ifindex}")
        return device

    def __len__(self) -> int:
        return len(self._devices)


class NetDevice:
    """Base device: a name, an ifindex, and an RX queue of frames."""

    def __init__(self, env: "Environment", name: str, registry: DeviceRegistry) -> None:
        from ..simcore import Store  # local import avoids a package cycle

        self.env = env
        self.name = name
        self.registry = registry
        self.ifindex = registry.register(self)
        self.rx_queue: Store = Store(env)
        self.frames_received = 0
        self.frames_sent = 0
        self.frames_dropped = 0    # fault injection: lost frames
        self.frames_corrupted = 0  # fault injection: checksum discards

    def receive_frame(self, packet: Packet) -> None:
        """Enqueue a frame arriving at this device."""
        faults = self.registry.faults
        if faults is not None and faults.active:
            if faults.drop_packet("rx", self.name):
                self.frames_dropped += 1
                return
            if faults.corrupt_packet("rx", self.name):
                # A corrupted frame fails its checksum and is discarded at
                # the driver; the sender never learns.
                self.frames_corrupted += 1
                return
        self.frames_received += 1
        packet.ingress_ifindex = self.ifindex
        self.rx_queue.try_put(packet)

    def send_frame(self, packet: Packet) -> bool:
        faults = self.registry.faults
        if faults is not None and faults.active and faults.drop_packet("tx", self.name):
            self.frames_dropped += 1
            return False
        self.frames_sent += 1
        return True


class PhysicalNic(NetDevice):
    """The node's physical NIC: XDP hook at the earliest RX point.

    ``offload_engine`` is the SmartNIC seam: when a
    :class:`~repro.dataplane.spright.xdp_accel.NicComputeEngine` is
    attached, whole match-action-expressible functions execute on the NIC's
    own cores at this hook (λ-NIC), never waking the host. ``None`` means a
    plain fixed-function NIC.
    """

    def __init__(
        self, env: "Environment", registry: DeviceRegistry, vm: Vm, name: str = "eth0"
    ) -> None:
        super().__init__(env, name, registry)
        self.xdp_hook = HookPoint(f"xdp@{name}", ProgramType.XDP, vm)
        self.link_speed_bps = 10e9  # 10 GbE, per the c220g5 testbed
        self.offload_engine = None  # duck-typed NicComputeEngine (λ-NIC)


class VethEndpoint(NetDevice):
    """One side of a veth pair; host side carries the TC ingress hook."""

    def __init__(
        self,
        env: "Environment",
        registry: DeviceRegistry,
        vm: Vm,
        name: str,
        is_host_side: bool,
    ) -> None:
        super().__init__(env, name, registry)
        self.is_host_side = is_host_side
        self.peer: Optional["VethEndpoint"] = None
        self.tc_hook = HookPoint(f"tc@{name}", ProgramType.TC, vm) if is_host_side else None

    def send_frame(self, packet: Packet) -> bool:
        """Transmitting on one side makes the frame appear on the peer."""
        if self.peer is None:
            raise RuntimeError(f"veth {self.name} has no peer")
        if not super().send_frame(packet):
            return False  # dropped on the TX path; the peer never sees it
        self.peer.receive_frame(packet)
        return True


class VethPair:
    """A pod's veth pair: pod-side inside the netns, host-side on the node."""

    def __init__(
        self, env: "Environment", registry: DeviceRegistry, vm: Vm, pod_name: str
    ) -> None:
        self.host_side = VethEndpoint(
            env, registry, vm, name=f"veth-{pod_name}-host", is_host_side=True
        )
        self.pod_side = VethEndpoint(
            env, registry, vm, name=f"veth-{pod_name}-pod", is_host_side=False
        )
        self.host_side.peer = self.pod_side
        self.pod_side.peer = self.host_side
