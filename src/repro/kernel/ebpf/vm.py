"""The eBPF interpreter and helper-function ABI.

Memory model: one flat little-endian byte array per invocation, laid out as
``[context/data region][stack]``. R1 enters pointing at offset 0 (the context)
and R10 at the end of memory (top of stack). Loads/stores are bounds-checked
at runtime; the verifier has already ruled out unbounded execution.

Helper side effects (socket redirection targets, FIB results) are
communicated through a per-invocation scratch object, which is how the hook
points learn what the program decided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .isa import (
    Insn,
    LOAD_SIZES,
    NUM_REGISTERS,
    Op,
    Program,
    R0,
    R1,
    R10,
    STACK_SIZE,
    STORE_SIZES,
    SK_DROP,
    SK_PASS,
    WORD_MASK,
    XDP_REDIRECT,
)
from .maps import ArrayMap, MapRegistry, SockMap

MAX_RUNTIME_INSNS = 100_000

# Helper IDs (Linux values where they exist).
HELPER_MAP_LOOKUP = 1
HELPER_MAP_UPDATE = 2
HELPER_MAP_DELETE = 3
HELPER_KTIME_GET_NS = 5
HELPER_TRACE_PRINTK = 6
HELPER_GET_PRANDOM_U32 = 7
HELPER_REDIRECT = 23
HELPER_MSG_REDIRECT_MAP = 60
HELPER_FIB_LOOKUP = 69
# Simulated extension: atomic add on an array map slot (stands in for the
# lookup + XADD sequence real metric programs emit).
HELPER_ARRAY_ADD = 200


class VmFault(Exception):
    """Runtime fault (out-of-bounds access, bad helper, insn limit)."""


@dataclass
class Scratch:
    """Per-invocation helper context and side-effect channel."""

    map_registry: Optional[MapRegistry] = None
    now_ns: int = 0
    fib: Optional[object] = None          # kernel.fib.FibTable
    packet_flow: Optional[object] = None  # kernel.packet.FiveTuple
    redirect_endpoint: Optional[object] = None  # sockmap redirect target
    redirect_ifindex: Optional[int] = None      # XDP/TC redirect target
    printk_log: list = field(default_factory=list)
    prandom_state: int = 0x9E3779B9


@dataclass
class RunResult:
    """Outcome of one program execution."""

    return_value: int
    insns_executed: int
    scratch: Scratch
    memory: bytearray


def _u64(value: int) -> int:
    return value & WORD_MASK


# -- precompilation ---------------------------------------------------------
# The interpreter hot loop dispatches on small integers rather than Op enum
# members; each Program is lowered once and cached. Categories:
_CAT_EXIT, _CAT_CALL, _CAT_JA, _CAT_JMP, _CAT_LOAD, _CAT_STORE, _CAT_ALU = range(7)

_JMP_CODES = {
    Op.JEQ_IMM: 0, Op.JEQ_REG: 1, Op.JNE_IMM: 2, Op.JNE_REG: 3,
    Op.JGT_IMM: 4, Op.JGE_IMM: 5, Op.JLT_IMM: 6, Op.JLE_IMM: 7,
    Op.JSET_IMM: 8,
}
_ALU_CODES = {
    Op.MOV_IMM: 0, Op.MOV_REG: 1, Op.ADD_IMM: 2, Op.ADD_REG: 3,
    Op.SUB_IMM: 4, Op.SUB_REG: 5, Op.MUL_IMM: 6, Op.MUL_REG: 7,
    Op.DIV_IMM: 8, Op.DIV_REG: 9, Op.MOD_IMM: 10, Op.MOD_REG: 11,
    Op.AND_IMM: 12, Op.AND_REG: 13, Op.OR_IMM: 14, Op.OR_REG: 15,
    Op.XOR_IMM: 16, Op.XOR_REG: 17, Op.LSH_IMM: 18, Op.RSH_IMM: 19,
    Op.NEG: 20,
}
_LOAD_CODES = {Op.LD8: 1, Op.LD16: 2, Op.LD32: 4, Op.LD64: 8}
_STORE_CODES = {Op.ST8: 1, Op.ST16: 2, Op.ST32: 4, Op.ST64: 8, Op.ST_IMM32: 4}


def _lower(program: Program) -> list[tuple]:
    """Lower a Program to (category, code, dst, src, off, imm) tuples."""
    lowered = []
    for insn in program.insns:
        op = insn.op
        if op is Op.EXIT:
            lowered.append((_CAT_EXIT, 0, 0, 0, 0, 0))
        elif op is Op.CALL:
            lowered.append((_CAT_CALL, 0, 0, 0, 0, insn.imm))
        elif op is Op.JA:
            lowered.append((_CAT_JA, 0, 0, 0, insn.off, 0))
        elif op in _JMP_CODES:
            lowered.append(
                (_CAT_JMP, _JMP_CODES[op], insn.dst, insn.src, insn.off, insn.imm)
            )
        elif op in _LOAD_CODES:
            lowered.append(
                (_CAT_LOAD, _LOAD_CODES[op], insn.dst, insn.src, insn.off, 0)
            )
        elif op in _STORE_CODES:
            is_imm = 1 if op is Op.ST_IMM32 else 0
            lowered.append(
                (_CAT_STORE, (_STORE_CODES[op], is_imm), insn.dst, insn.src, insn.off, insn.imm)
            )
        else:
            lowered.append(
                (_CAT_ALU, _ALU_CODES[op], insn.dst, insn.src, insn.off, insn.imm)
            )
    return lowered


class Vm:
    """Interprets verified programs against a map registry."""

    def __init__(self, map_registry: Optional[MapRegistry] = None) -> None:
        self.map_registry = map_registry or MapRegistry()
        self._helpers: dict[int, Callable] = {
            HELPER_MAP_LOOKUP: self._helper_map_lookup,
            HELPER_MAP_UPDATE: self._helper_map_update,
            HELPER_MAP_DELETE: self._helper_map_delete,
            HELPER_KTIME_GET_NS: self._helper_ktime,
            HELPER_TRACE_PRINTK: self._helper_printk,
            HELPER_GET_PRANDOM_U32: self._helper_prandom,
            HELPER_REDIRECT: self._helper_redirect,
            HELPER_MSG_REDIRECT_MAP: self._helper_msg_redirect_map,
            HELPER_FIB_LOOKUP: self._helper_fib_lookup,
            HELPER_ARRAY_ADD: self._helper_array_add,
        }

        self._compiled: dict[int, list[tuple]] = {}

    def register_helper(self, helper_id: int, fn: Callable) -> None:
        """Install a custom helper (tests and extensions)."""
        self._helpers[helper_id] = fn

    def _compile(self, program: Program) -> list[tuple]:
        key = id(program)
        lowered = self._compiled.get(key)
        if lowered is None:
            lowered = _lower(program)
            self._compiled[key] = lowered
        return lowered

    # -- execution -----------------------------------------------------------
    def run(
        self,
        program: Program,
        data: bytes = b"",
        scratch: Optional[Scratch] = None,
    ) -> RunResult:
        """Execute ``program`` with ``data`` as its context region."""
        scratch = scratch or Scratch(map_registry=self.map_registry)
        if scratch.map_registry is None:
            scratch.map_registry = self.map_registry
        memory = bytearray(data) + bytearray(STACK_SIZE)
        mem_limit = len(memory)
        regs = [0] * NUM_REGISTERS
        regs[R1] = 0            # context pointer
        regs[R10] = mem_limit   # frame pointer (top of stack)

        lowered = self._compile(program)
        program_len = len(lowered)
        helpers = self._helpers
        mask = WORD_MASK
        pc = 0
        executed = 0
        while True:
            if executed >= MAX_RUNTIME_INSNS:
                raise VmFault("instruction limit exceeded")
            if not 0 <= pc < program_len:
                raise VmFault(f"pc {pc} out of range")
            category, code, dst, src, off, imm = lowered[pc]
            executed += 1

            if category == _CAT_ALU:
                value = regs[dst]
                if code == 0:
                    value = imm
                elif code == 1:
                    value = regs[src]
                elif code == 2:
                    value = value + imm
                elif code == 3:
                    value = value + regs[src]
                elif code == 4:
                    value = value - imm
                elif code == 5:
                    value = value - regs[src]
                elif code == 6:
                    value = value * imm
                elif code == 7:
                    value = value * regs[src]
                elif code == 8:
                    value = value // imm
                elif code == 9:
                    divisor = regs[src] & mask
                    value = 0 if divisor == 0 else (value & mask) // divisor
                elif code == 10:
                    value = value % imm
                elif code == 11:
                    divisor = regs[src] & mask
                    value = value if divisor == 0 else (value & mask) % divisor
                elif code == 12:
                    value = value & imm
                elif code == 13:
                    value = value & regs[src]
                elif code == 14:
                    value = value | imm
                elif code == 15:
                    value = value | regs[src]
                elif code == 16:
                    value = value ^ imm
                elif code == 17:
                    value = value ^ regs[src]
                elif code == 18:
                    value = value << imm
                elif code == 19:
                    value = (value & mask) >> imm
                else:  # NEG
                    value = -value
                regs[dst] = value & mask
                pc += 1
                continue
            if category == _CAT_LOAD:
                address = (regs[src] + off) & mask
                end = address + code
                if end > mem_limit:
                    raise VmFault(
                        f"memory access [{address}, {end}) out of bounds"
                    )
                regs[dst] = int.from_bytes(memory[address:end], "little")
                pc += 1
                continue
            if category == _CAT_STORE:
                size, is_imm = code
                address = (regs[dst] + off) & mask
                end = address + size
                if end > mem_limit:
                    raise VmFault(
                        f"memory access [{address}, {end}) out of bounds"
                    )
                value = imm if is_imm else regs[src]
                memory[address:end] = (value & mask).to_bytes(8, "little")[:size]
                pc += 1
                continue
            if category == _CAT_JMP:
                dst_value = regs[dst] & mask
                if code == 0:
                    taken = dst_value == imm & mask
                elif code == 1:
                    taken = dst_value == regs[src] & mask
                elif code == 2:
                    taken = dst_value != imm & mask
                elif code == 3:
                    taken = dst_value != regs[src] & mask
                elif code == 4:
                    taken = dst_value > imm & mask
                elif code == 5:
                    taken = dst_value >= imm & mask
                elif code == 6:
                    taken = dst_value < imm & mask
                elif code == 7:
                    taken = dst_value <= imm & mask
                else:
                    taken = bool(dst_value & imm)
                pc += 1 + (off if taken else 0)
                continue
            if category == _CAT_JA:
                pc += 1 + off
                continue
            if category == _CAT_CALL:
                helper = helpers.get(imm)
                if helper is None:
                    raise VmFault(f"unknown helper id {imm}")
                regs[R0] = helper(regs, memory, scratch) & mask
                pc += 1
                continue
            # _CAT_EXIT
            return RunResult(
                return_value=regs[R0] & mask,
                insns_executed=executed,
                scratch=scratch,
                memory=memory,
            )

    # -- helpers ---------------------------------------------------------------
    # ABI: helpers receive (regs, memory, scratch) and return the new R0.
    def _helper_map_lookup(self, regs, memory, scratch) -> int:
        """R1=map fd, R2=key -> value as u64 (0 means miss/NULL)."""
        bpf_map = scratch.map_registry.get(regs[R1])
        value = bpf_map.lookup(_u64(regs[2]))
        if value is None:
            return 0
        if isinstance(value, int):
            return value
        return 1  # non-scalar value: report presence

    def _helper_map_update(self, regs, memory, scratch) -> int:
        """R1=map fd, R2=key, R3=value."""
        bpf_map = scratch.map_registry.get(regs[R1])
        bpf_map.update(_u64(regs[2]), _u64(regs[3]))
        return 0

    def _helper_map_delete(self, regs, memory, scratch) -> int:
        bpf_map = scratch.map_registry.get(regs[R1])
        try:
            bpf_map.delete(_u64(regs[2]))
        except Exception:
            return _u64(-2)  # -ENOENT
        return 0

    def _helper_ktime(self, regs, memory, scratch) -> int:
        return scratch.now_ns

    def _helper_printk(self, regs, memory, scratch) -> int:
        scratch.printk_log.append((_u64(regs[R1]), _u64(regs[2])))
        return 0

    def _helper_prandom(self, regs, memory, scratch) -> int:
        # xorshift32, deterministic per scratch
        state = scratch.prandom_state & 0xFFFFFFFF
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        scratch.prandom_state = state
        return state

    def _helper_redirect(self, regs, memory, scratch) -> int:
        """R1=target ifindex -> XDP_REDIRECT."""
        scratch.redirect_ifindex = _u64(regs[R1])
        return XDP_REDIRECT

    def _helper_msg_redirect_map(self, regs, memory, scratch) -> int:
        """R1=sockmap fd, R2=key (instance id) -> SK_PASS / SK_DROP."""
        bpf_map = scratch.map_registry.get(regs[R1])
        if not isinstance(bpf_map, SockMap):
            raise VmFault("msg_redirect_map requires a sockmap")
        endpoint = bpf_map.lookup(_u64(regs[2]))
        if endpoint is None:
            return SK_DROP
        scratch.redirect_endpoint = endpoint
        return SK_PASS

    def _helper_fib_lookup(self, regs, memory, scratch) -> int:
        """FIB lookup on scratch.packet_flow -> 0 hit (ifindex in scratch)."""
        if scratch.fib is None or scratch.packet_flow is None:
            return 1
        ifindex = scratch.fib.lookup(scratch.packet_flow)
        if ifindex is None:
            return 1
        scratch.redirect_ifindex = ifindex
        return 0

    def _helper_array_add(self, regs, memory, scratch) -> int:
        """R1=array fd, R2=index, R3=delta -> new value."""
        bpf_map = scratch.map_registry.get(regs[R1])
        if not isinstance(bpf_map, ArrayMap):
            raise VmFault("array_add requires an array map")
        return _u64(bpf_map.add(_u64(regs[2]), regs[3]))
