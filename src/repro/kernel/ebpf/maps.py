"""eBPF maps: the kernel/userspace shared data structures.

Maps are the configurability mechanism SPRIGHT leans on: the sockmap drives
SPROXY redirection, hash maps hold DFR filtering rules, and array maps hold
the EPROXY metrics. File descriptors are integers handed out by the
:class:`MapRegistry`, mirroring how loaded programs reference maps by fd.
"""

from __future__ import annotations

from typing import Iterator, Optional


class MapError(Exception):
    """Raised on invalid map operations (full map, bad key size, ...)."""


class BpfMap:
    """Base class: fixed max_entries, byte-string keys, opaque values."""

    map_type = "generic"

    def __init__(self, max_entries: int, name: str = "") -> None:
        if max_entries <= 0:
            raise MapError("max_entries must be positive")
        self.max_entries = max_entries
        self.name = name
        self.fd: Optional[int] = None  # assigned by the registry

    def lookup(self, key: int) -> Optional[object]:
        raise NotImplementedError

    def update(self, key: int, value: object) -> None:
        raise NotImplementedError

    def delete(self, key: int) -> None:
        raise NotImplementedError


class HashMap(BpfMap):
    """BPF_MAP_TYPE_HASH: integer keys to values (we use u64 keys)."""

    map_type = "hash"

    def __init__(self, max_entries: int, name: str = "") -> None:
        super().__init__(max_entries, name)
        self._data: dict[int, object] = {}

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def lookup(self, key: int) -> Optional[object]:
        return self._data.get(key)

    def update(self, key: int, value: object) -> None:
        if key not in self._data and len(self._data) >= self.max_entries:
            raise MapError(f"map {self.name!r} is full ({self.max_entries} entries)")
        self._data[key] = value

    def delete(self, key: int) -> None:
        if key not in self._data:
            raise MapError(f"key {key} not found in map {self.name!r}")
        del self._data[key]

    def keys(self) -> Iterator[int]:
        return iter(self._data)


class ArrayMap(BpfMap):
    """BPF_MAP_TYPE_ARRAY: dense u32-indexed slots, zero-initialized."""

    map_type = "array"

    def __init__(self, max_entries: int, name: str = "") -> None:
        super().__init__(max_entries, name)
        self._slots: list[int] = [0] * max_entries

    def lookup(self, key: int) -> Optional[int]:
        if not 0 <= key < self.max_entries:
            return None
        return self._slots[key]

    def update(self, key: int, value: object) -> None:
        if not 0 <= key < self.max_entries:
            raise MapError(f"index {key} out of range for array map {self.name!r}")
        self._slots[key] = int(value)  # type: ignore[arg-type]

    def delete(self, key: int) -> None:
        # Array maps cannot delete; Linux returns -EINVAL.
        raise MapError("array maps do not support delete")

    def add(self, key: int, delta: int) -> int:
        """Atomic add (the metric programs' fetch-and-add)."""
        if not 0 <= key < self.max_entries:
            raise MapError(f"index {key} out of range for array map {self.name!r}")
        self._slots[key] += delta
        return self._slots[key]


class SockMap(HashMap):
    """BPF_MAP_TYPE_SOCKMAP: function instance ID -> socket reference.

    Values must expose a ``deliver_descriptor`` method (our simulated socket
    endpoints do); ``bpf_msg_redirect_map`` resolves through this map.
    """

    map_type = "sockmap"

    def update(self, key: int, value: object) -> None:
        if not hasattr(value, "deliver_descriptor"):
            raise MapError("sockmap values must be socket endpoints")
        super().update(key, value)


class MapRegistry:
    """Hands out file descriptors and resolves fd -> map at helper-call time."""

    def __init__(self) -> None:
        self._maps: dict[int, BpfMap] = {}
        self._next_fd = 3  # 0/1/2 are stdio, cosmetically

    def create(self, bpf_map: BpfMap) -> int:
        fd = self._next_fd
        self._next_fd += 1
        bpf_map.fd = fd
        self._maps[fd] = bpf_map
        return fd

    def maps(self) -> list[BpfMap]:
        """All live maps in fd order (deterministic iteration for tooling)."""
        return [self._maps[fd] for fd in sorted(self._maps)]

    def get(self, fd: int) -> BpfMap:
        bpf_map = self._maps.get(fd)
        if bpf_map is None:
            raise MapError(f"no map with fd {fd}")
        return bpf_map

    def close(self, fd: int) -> None:
        if fd not in self._maps:
            raise MapError(f"no map with fd {fd}")
        del self._maps[fd]

    def __len__(self) -> int:
        return len(self._maps)
