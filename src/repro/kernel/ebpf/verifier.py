"""Static verifier for the simulated eBPF VM.

Enforces the classic eBPF safety contract: bounded program size, forward-only
jumps (hence guaranteed termination), in-range jump targets, no reads of
uninitialized registers, no writes to the frame pointer, no constant division
by zero, and statically-checkable stack bounds. Programs that fail are
rejected at load time, exactly like the kernel would do.
"""

from __future__ import annotations

from .isa import (
    FRAME_POINTER,
    Insn,
    LOAD_SIZES,
    NUM_REGISTERS,
    Op,
    Program,
    R0,
    R1,
    R10,
    STACK_SIZE,
    STORE_SIZES,
)

MAX_INSNS = 4096
# Registers clobbered by a helper call (caller-saved), per the eBPF ABI.
CALLER_SAVED = (R1, 2, 3, 4, 5)


class VerifierError(Exception):
    """Program rejected by the verifier; message says why and where."""

    def __init__(self, index: int, reason: str) -> None:
        super().__init__(f"insn {index}: {reason}")
        self.index = index
        self.reason = reason


def _reads(insn: Insn) -> list[int]:
    """Registers an instruction reads."""
    op = insn.op
    if op in (Op.MOV_IMM,):
        return []
    if op in (Op.MOV_REG,):
        return [insn.src]
    if op in (Op.ADD_REG, Op.SUB_REG, Op.MUL_REG, Op.DIV_REG, Op.MOD_REG,
              Op.AND_REG, Op.OR_REG, Op.XOR_REG):
        return [insn.dst, insn.src]
    if op in (Op.ADD_IMM, Op.SUB_IMM, Op.MUL_IMM, Op.DIV_IMM, Op.MOD_IMM,
              Op.AND_IMM, Op.OR_IMM, Op.XOR_IMM, Op.LSH_IMM, Op.RSH_IMM, Op.NEG):
        return [insn.dst]
    if op.is_load:
        return [insn.src]
    if op in (Op.ST8, Op.ST16, Op.ST32, Op.ST64):
        return [insn.dst, insn.src]
    if op is Op.ST_IMM32:
        return [insn.dst]
    if op in (Op.JEQ_REG, Op.JNE_REG):
        return [insn.dst, insn.src]
    if op in (Op.JEQ_IMM, Op.JNE_IMM, Op.JGT_IMM, Op.JGE_IMM,
              Op.JLT_IMM, Op.JLE_IMM, Op.JSET_IMM):
        return [insn.dst]
    if op is Op.EXIT:
        return [R0]
    return []  # JA, CALL (args conservatively unchecked: helpers validate)


def _writes(insn: Insn) -> list[int]:
    op = insn.op
    if op.is_store or op in (Op.JA, Op.EXIT) or op.is_jump:
        return []
    if op is Op.CALL:
        return [R0]
    return [insn.dst]


def verify(program: Program) -> None:
    """Raise :class:`VerifierError` if the program is unsafe."""
    insns = program.insns
    if not insns:
        raise VerifierError(0, "empty program")
    if len(insns) > MAX_INSNS:
        raise VerifierError(0, f"program too large ({len(insns)} > {MAX_INSNS})")

    # Structural checks per instruction.
    for index, insn in enumerate(insns):
        if insn.op.is_jump:
            if insn.off < 0:
                raise VerifierError(index, "backward jump (loops are not allowed)")
            target = index + 1 + insn.off
            if not 0 <= target < len(insns):
                raise VerifierError(index, f"jump target {target} out of range")
        if insn.op in (Op.DIV_IMM, Op.MOD_IMM) and insn.imm == 0:
            raise VerifierError(index, "division by zero immediate")
        if insn.op in (Op.LSH_IMM, Op.RSH_IMM) and not 0 <= insn.imm < 64:
            raise VerifierError(index, f"shift amount {insn.imm} out of range")
        if FRAME_POINTER in _writes(insn):
            raise VerifierError(index, "write to frame pointer r10")
        if insn.op.is_load and insn.src == FRAME_POINTER:
            size = LOAD_SIZES[insn.op]
            if not -STACK_SIZE <= insn.off <= -size:
                raise VerifierError(index, f"stack read at fp{insn.off:+d} out of bounds")
        if insn.op.is_store and insn.dst == FRAME_POINTER:
            size = STORE_SIZES[insn.op]
            if not -STACK_SIZE <= insn.off <= -size:
                raise VerifierError(index, f"stack write at fp{insn.off:+d} out of bounds")

    # Register-initialization dataflow. Jumps are forward-only, so a single
    # in-order pass with per-instruction "initialized" sets converges.
    entry = frozenset({R1, R10})
    incoming: list[set[int] | None] = [None] * len(insns)
    incoming[0] = set(entry)

    def merge(target: int, state: set[int]) -> None:
        if incoming[target] is None:
            incoming[target] = set(state)
        else:
            incoming[target] &= state

    reached_exit = False
    for index, insn in enumerate(insns):
        state = incoming[index]
        if state is None:
            continue  # unreachable instruction: harmless, skip
        for register in _reads(insn):
            if register not in state:
                raise VerifierError(index, f"read of uninitialized register r{register}")
        out = set(state)
        if insn.op is Op.CALL:
            for register in CALLER_SAVED:
                out.discard(register)
            out.add(R0)
        else:
            out.update(_writes(insn))

        if insn.op is Op.EXIT:
            reached_exit = True
            continue
        if insn.op is Op.JA:
            merge(index + 1 + insn.off, out)
            continue
        if insn.op.is_jump:
            merge(index + 1 + insn.off, out)
        if index + 1 >= len(insns):
            raise VerifierError(index, "control flow falls off the end of the program")
        merge(index + 1, out)

    if not reached_exit:
        raise VerifierError(len(insns) - 1, "no reachable EXIT instruction")


def load(program: Program) -> Program:
    """Verify and return the program (the kernel's prog-load entry point)."""
    verify(program)
    return program
