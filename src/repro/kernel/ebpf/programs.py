"""The actual eBPF programs SPRIGHT loads, written in our bytecode.

Context layouts (little-endian):

SK_MSG descriptor context (24 bytes)::

    [ 0: 4]  next_fn_id   (u32)   who the descriptor is addressed to
    [ 4:12]  shm_offset   (u64)   payload location in the shared pool
    [12:16]  payload_len  (u32)
    [16:20]  sender_id    (u32)   filled in by the kernel, not the sender
    [20:24]  generation   (u32)   buffer allocation generation (ABA defence)

XDP/TC packet context (16 bytes)::

    [ 0: 4]  pkt_len        (u32)
    [ 4: 8]  ingress_ifindex(u32)
    [ 8:16]  reserved

Metric slots in the EPROXY/SPROXY array maps::

    slot 0: packets/requests seen
    slot 1: bytes seen
"""

from __future__ import annotations

from .assembler import Assembler
from .isa import (
    Program,
    ProgramType,
    R0,
    R1,
    R2,
    R3,
    R4,
    R6,
    SK_DROP,
    SK_PASS,
    TC_ACT_OK,
    TC_ACT_REDIRECT,
    XDP_DROP,
    XDP_PASS,
    XDP_REDIRECT,
)
from .vm import (
    HELPER_ARRAY_ADD,
    HELPER_FIB_LOOKUP,
    HELPER_MAP_LOOKUP,
    HELPER_MSG_REDIRECT_MAP,
)

# Context field offsets (keep in sync with the docstring).
DESC_NEXT_FN = 0
DESC_SHM_OFFSET = 4
DESC_LEN = 12
DESC_SENDER = 16
DESC_GENERATION = 20
DESC_CTX_BYTES = 24

PKT_LEN = 0
PKT_IFINDEX = 4
PKT_CTX_BYTES = 16

METRIC_SLOT_COUNT = 0
METRIC_SLOT_BYTES = 1


def sproxy_redirect(sockmap_fd: int, name: str = "sproxy_redirect") -> Program:
    """SK_MSG program: steer a packet descriptor to the next function's socket.

    Reads the next-function instance ID from the descriptor, resolves the
    target socket via the sockmap, and short-circuits the kernel protocol
    stack with ``bpf_msg_redirect_map`` — the core of S-SPRIGHT (§3.2.1).
    """
    asm = Assembler(name)
    asm.mov_reg(R6, R1)                      # keep ctx across the call
    asm.ld32(R2, R6, DESC_NEXT_FN)           # key = next_fn_id
    asm.mov_imm(R1, sockmap_fd)
    asm.call(HELPER_MSG_REDIRECT_MAP)        # R0 = SK_PASS / SK_DROP
    asm.exit_()
    return asm.build(ProgramType.SK_MSG)


def sproxy_filtered_redirect(
    filter_map_fd: int, sockmap_fd: int, name: str = "sproxy_filtered"
) -> Program:
    """SK_MSG program with DFR security filtering (§3.4).

    Looks up ``(sender_id << 16) | next_fn_id`` in the filtering map; a miss
    means the sender is not authorized to reach that destination, so the
    descriptor is dropped before any redirection happens.
    """
    asm = Assembler(name)
    asm.mov_reg(R6, R1)
    # key = (sender << 16) | next_fn
    asm.ld32(R3, R6, DESC_SENDER)
    asm.lsh_imm(R3, 16)
    asm.ld32(R4, R6, DESC_NEXT_FN)
    asm.mov_reg(R2, R3)
    asm.or_reg(R2, R4)
    asm.mov_imm(R1, filter_map_fd)
    asm.call(HELPER_MAP_LOOKUP)              # R0 = 1 if allowed, 0 if miss
    asm.jeq_imm(R0, 0, "drop")
    asm.ld32(R2, R6, DESC_NEXT_FN)
    asm.mov_imm(R1, sockmap_fd)
    asm.call(HELPER_MSG_REDIRECT_MAP)
    asm.exit_()
    asm.label("drop")
    asm.mov_imm(R0, SK_DROP)
    asm.exit_()
    return asm.build(ProgramType.SK_MSG)


def sproxy_l7_metrics(metrics_fd: int, name: str = "sproxy_metrics") -> Program:
    """SK_MSG metrics program: count requests and payload bytes (§3.3)."""
    asm = Assembler(name)
    asm.mov_reg(R6, R1)
    asm.mov_imm(R1, metrics_fd)
    asm.mov_imm(R2, METRIC_SLOT_COUNT)
    asm.mov_imm(R3, 1)
    asm.call(HELPER_ARRAY_ADD)               # requests += 1
    asm.mov_imm(R1, metrics_fd)
    asm.mov_imm(R2, METRIC_SLOT_BYTES)
    asm.ld32(R3, R6, DESC_LEN)
    asm.call(HELPER_ARRAY_ADD)               # bytes += payload_len
    asm.mov_imm(R0, SK_PASS)
    asm.exit_()
    return asm.build(ProgramType.SK_MSG)


def eproxy_l3_metrics(metrics_fd: int, name: str = "eproxy_metrics") -> Program:
    """TC metrics program at the gateway: packet rate and bytes received."""
    asm = Assembler(name)
    asm.mov_reg(R6, R1)
    asm.mov_imm(R1, metrics_fd)
    asm.mov_imm(R2, METRIC_SLOT_COUNT)
    asm.mov_imm(R3, 1)
    asm.call(HELPER_ARRAY_ADD)
    asm.mov_imm(R1, metrics_fd)
    asm.mov_imm(R2, METRIC_SLOT_BYTES)
    asm.ld32(R3, R6, PKT_LEN)
    asm.call(HELPER_ARRAY_ADD)
    asm.mov_imm(R0, TC_ACT_OK)
    asm.exit_()
    return asm.build(ProgramType.TC)


def xdp_fib_forward(name: str = "xdp_forward") -> Program:
    """XDP program on the physical NIC: FIB lookup + raw-frame redirect (§3.5).

    A FIB hit places the destination ifindex in the run scratch and returns
    ``XDP_REDIRECT``; a miss falls back to ``XDP_PASS`` so the packet takes
    the ordinary kernel path.
    """
    asm = Assembler(name)
    asm.mov_reg(R6, R1)
    asm.call(HELPER_FIB_LOOKUP)              # 0 = hit (ifindex in scratch)
    asm.jne_imm(R0, 0, "pass")
    asm.mov_imm(R0, XDP_REDIRECT)
    asm.exit_()
    asm.label("pass")
    asm.mov_imm(R0, XDP_PASS)
    asm.exit_()
    return asm.build(ProgramType.XDP)


def tc_fib_forward(name: str = "tc_forward") -> Program:
    """TC program on veth-host RX: redirect pod egress without iptables."""
    asm = Assembler(name)
    asm.mov_reg(R6, R1)
    asm.call(HELPER_FIB_LOOKUP)
    asm.jne_imm(R0, 0, "ok")
    asm.mov_imm(R0, TC_ACT_REDIRECT)
    asm.exit_()
    asm.label("ok")
    asm.mov_imm(R0, TC_ACT_OK)
    asm.exit_()
    return asm.build(ProgramType.TC)


def encode_descriptor_ctx(
    next_fn_id: int,
    shm_offset: int,
    payload_len: int,
    sender_id: int,
    generation: int = 0,
) -> bytes:
    """Build the 24-byte SK_MSG context for one descriptor send."""
    return (
        next_fn_id.to_bytes(4, "little")
        + shm_offset.to_bytes(8, "little")
        + payload_len.to_bytes(4, "little")
        + sender_id.to_bytes(4, "little")
        + generation.to_bytes(4, "little")
    )


def encode_packet_ctx(pkt_len: int, ingress_ifindex: int) -> bytes:
    """Build the 16-byte XDP/TC context for one frame."""
    return (
        pkt_len.to_bytes(4, "little")
        + ingress_ifindex.to_bytes(4, "little")
        + b"\x00" * 8
    )


def xdp_rate_limiter(
    counter_fd: int, limit_per_window: int, name: str = "xdp_ratelimit"
) -> Program:
    """XDP ingress rate limiter: drop frames beyond a per-window budget.

    The window counter lives in an array map (slot 0) that userspace resets
    every interval — the split of fast-path counting (kernel) and slow-path
    policy (userspace) real limiters use. Returns ``XDP_DROP`` once the
    budget is spent, ``XDP_PASS`` otherwise.
    """
    asm = Assembler(name)
    asm.mov_imm(R1, counter_fd)
    asm.mov_imm(R2, METRIC_SLOT_COUNT)
    asm.mov_imm(R3, 1)
    asm.call(HELPER_ARRAY_ADD)              # R0 = ++window counter
    asm.jgt_imm(R0, limit_per_window, "over")
    asm.mov_imm(R0, XDP_PASS)
    asm.exit_()
    asm.label("over")
    asm.mov_imm(R0, XDP_DROP)
    asm.exit_()
    return asm.build(ProgramType.XDP)
