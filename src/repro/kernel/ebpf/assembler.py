"""Mnemonic program builder with label-based jumps."""

from __future__ import annotations

from dataclasses import dataclass

from .isa import Insn, Op, Program, ProgramType


@dataclass
class _PendingJump:
    index: int
    label: str


class Assembler:
    """Builds a :class:`Program` instruction by instruction.

    Jumps take label names; offsets are resolved (forward-only, as the
    verifier demands) at :meth:`build` time.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._insns: list[Insn] = []
        self._labels: dict[str, int] = {}
        self._pending: list[_PendingJump] = []

    # -- labels -------------------------------------------------------------
    def label(self, name: str) -> "Assembler":
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insns)
        return self

    def _emit(self, insn: Insn) -> "Assembler":
        self._insns.append(insn)
        return self

    def _emit_jump(self, op: Op, dst: int, src: int, imm: int, label: str) -> "Assembler":
        self._pending.append(_PendingJump(len(self._insns), label))
        return self._emit(Insn(op, dst=dst, src=src, off=0, imm=imm))

    # -- ALU ----------------------------------------------------------------
    def mov_imm(self, dst: int, imm: int) -> "Assembler":
        return self._emit(Insn(Op.MOV_IMM, dst=dst, imm=imm))

    def mov_reg(self, dst: int, src: int) -> "Assembler":
        return self._emit(Insn(Op.MOV_REG, dst=dst, src=src))

    def add_imm(self, dst: int, imm: int) -> "Assembler":
        return self._emit(Insn(Op.ADD_IMM, dst=dst, imm=imm))

    def add_reg(self, dst: int, src: int) -> "Assembler":
        return self._emit(Insn(Op.ADD_REG, dst=dst, src=src))

    def sub_imm(self, dst: int, imm: int) -> "Assembler":
        return self._emit(Insn(Op.SUB_IMM, dst=dst, imm=imm))

    def sub_reg(self, dst: int, src: int) -> "Assembler":
        return self._emit(Insn(Op.SUB_REG, dst=dst, src=src))

    def mul_imm(self, dst: int, imm: int) -> "Assembler":
        return self._emit(Insn(Op.MUL_IMM, dst=dst, imm=imm))

    def div_imm(self, dst: int, imm: int) -> "Assembler":
        return self._emit(Insn(Op.DIV_IMM, dst=dst, imm=imm))

    def mod_imm(self, dst: int, imm: int) -> "Assembler":
        return self._emit(Insn(Op.MOD_IMM, dst=dst, imm=imm))

    def and_imm(self, dst: int, imm: int) -> "Assembler":
        return self._emit(Insn(Op.AND_IMM, dst=dst, imm=imm))

    def or_imm(self, dst: int, imm: int) -> "Assembler":
        return self._emit(Insn(Op.OR_IMM, dst=dst, imm=imm))

    def or_reg(self, dst: int, src: int) -> "Assembler":
        return self._emit(Insn(Op.OR_REG, dst=dst, src=src))

    def and_reg(self, dst: int, src: int) -> "Assembler":
        return self._emit(Insn(Op.AND_REG, dst=dst, src=src))

    def xor_reg(self, dst: int, src: int) -> "Assembler":
        return self._emit(Insn(Op.XOR_REG, dst=dst, src=src))

    def lsh_imm(self, dst: int, imm: int) -> "Assembler":
        return self._emit(Insn(Op.LSH_IMM, dst=dst, imm=imm))

    def rsh_imm(self, dst: int, imm: int) -> "Assembler":
        return self._emit(Insn(Op.RSH_IMM, dst=dst, imm=imm))

    # -- memory ---------------------------------------------------------------
    def ld8(self, dst: int, src: int, off: int = 0) -> "Assembler":
        return self._emit(Insn(Op.LD8, dst=dst, src=src, off=off))

    def ld16(self, dst: int, src: int, off: int = 0) -> "Assembler":
        return self._emit(Insn(Op.LD16, dst=dst, src=src, off=off))

    def ld32(self, dst: int, src: int, off: int = 0) -> "Assembler":
        return self._emit(Insn(Op.LD32, dst=dst, src=src, off=off))

    def ld64(self, dst: int, src: int, off: int = 0) -> "Assembler":
        return self._emit(Insn(Op.LD64, dst=dst, src=src, off=off))

    def st8(self, dst: int, src: int, off: int = 0) -> "Assembler":
        return self._emit(Insn(Op.ST8, dst=dst, src=src, off=off))

    def st32(self, dst: int, src: int, off: int = 0) -> "Assembler":
        return self._emit(Insn(Op.ST32, dst=dst, src=src, off=off))

    def st64(self, dst: int, src: int, off: int = 0) -> "Assembler":
        return self._emit(Insn(Op.ST64, dst=dst, src=src, off=off))

    def st_imm32(self, dst: int, off: int, imm: int) -> "Assembler":
        return self._emit(Insn(Op.ST_IMM32, dst=dst, off=off, imm=imm))

    # -- control flow --------------------------------------------------------
    def ja(self, label: str) -> "Assembler":
        return self._emit_jump(Op.JA, 0, 0, 0, label)

    def jeq_imm(self, dst: int, imm: int, label: str) -> "Assembler":
        return self._emit_jump(Op.JEQ_IMM, dst, 0, imm, label)

    def jeq_reg(self, dst: int, src: int, label: str) -> "Assembler":
        return self._emit_jump(Op.JEQ_REG, dst, src, 0, label)

    def jne_imm(self, dst: int, imm: int, label: str) -> "Assembler":
        return self._emit_jump(Op.JNE_IMM, dst, 0, imm, label)

    def jne_reg(self, dst: int, src: int, label: str) -> "Assembler":
        return self._emit_jump(Op.JNE_REG, dst, src, 0, label)

    def jgt_imm(self, dst: int, imm: int, label: str) -> "Assembler":
        return self._emit_jump(Op.JGT_IMM, dst, 0, imm, label)

    def jge_imm(self, dst: int, imm: int, label: str) -> "Assembler":
        return self._emit_jump(Op.JGE_IMM, dst, 0, imm, label)

    def jlt_imm(self, dst: int, imm: int, label: str) -> "Assembler":
        return self._emit_jump(Op.JLT_IMM, dst, 0, imm, label)

    def jle_imm(self, dst: int, imm: int, label: str) -> "Assembler":
        return self._emit_jump(Op.JLE_IMM, dst, 0, imm, label)

    def jset_imm(self, dst: int, imm: int, label: str) -> "Assembler":
        return self._emit_jump(Op.JSET_IMM, dst, 0, imm, label)

    def call(self, helper_id: int) -> "Assembler":
        return self._emit(Insn(Op.CALL, imm=helper_id))

    def exit_(self) -> "Assembler":
        return self._emit(Insn(Op.EXIT))

    # -- finalization -----------------------------------------------------------
    def build(self, prog_type: ProgramType) -> Program:
        """Resolve labels and produce an immutable :class:`Program`."""
        insns = list(self._insns)
        for pending in self._pending:
            target = self._labels.get(pending.label)
            if target is None:
                raise ValueError(f"undefined label {pending.label!r}")
            offset = target - pending.index - 1
            original = insns[pending.index]
            insns[pending.index] = Insn(
                original.op,
                dst=original.dst,
                src=original.src,
                off=offset,
                imm=original.imm,
            )
        return Program(insns=tuple(insns), prog_type=prog_type, name=self.name)
