"""bpftool-style introspection: list programs, dump maps, disassemble.

Operators of a SPRIGHT node need to see what is attached where and how much
work it does — the same visibility `bpftool prog`/`bpftool map` gives on
Linux. Hook points already track fire counts and executed instructions;
this module renders them, plus a disassembler for loaded programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .hooks import HookPoint
from .isa import Insn, Op, Program
from .maps import ArrayMap, BpfMap, HashMap, MapRegistry, SockMap

_REG = "r{}"


def disassemble_insn(insn: Insn, index: int) -> str:
    """One instruction in kernel-verifier-log style."""
    op = insn.op
    dst = _REG.format(insn.dst)
    src = _REG.format(insn.src)
    if op is Op.EXIT:
        body = "exit"
    elif op is Op.CALL:
        body = f"call {insn.imm}"
    elif op is Op.JA:
        body = f"goto +{insn.off}"
    elif op.name.startswith("J"):
        comparator = {
            "JEQ": "==", "JNE": "!=", "JGT": ">", "JGE": ">=",
            "JLT": "<", "JLE": "<=", "JSET": "&",
        }[op.name.split("_")[0]]
        operand = src if op.name.endswith("REG") else str(insn.imm)
        body = f"if {dst} {comparator} {operand} goto +{insn.off}"
    elif op.is_load:
        size = {Op.LD8: "u8", Op.LD16: "u16", Op.LD32: "u32", Op.LD64: "u64"}[op]
        body = f"{dst} = *({size} *)({src} {insn.off:+d})"
    elif op is Op.ST_IMM32:
        body = f"*(u32 *)({dst} {insn.off:+d}) = {insn.imm}"
    elif op.is_store:
        size = {Op.ST8: "u8", Op.ST16: "u16", Op.ST32: "u32", Op.ST64: "u64"}[op]
        body = f"*({size} *)({dst} {insn.off:+d}) = {src}"
    else:
        mnemonic = {
            Op.MOV_IMM: f"{dst} = {insn.imm}",
            Op.MOV_REG: f"{dst} = {src}",
            Op.ADD_IMM: f"{dst} += {insn.imm}",
            Op.ADD_REG: f"{dst} += {src}",
            Op.SUB_IMM: f"{dst} -= {insn.imm}",
            Op.SUB_REG: f"{dst} -= {src}",
            Op.MUL_IMM: f"{dst} *= {insn.imm}",
            Op.MUL_REG: f"{dst} *= {src}",
            Op.DIV_IMM: f"{dst} /= {insn.imm}",
            Op.DIV_REG: f"{dst} /= {src}",
            Op.MOD_IMM: f"{dst} %= {insn.imm}",
            Op.MOD_REG: f"{dst} %= {src}",
            Op.AND_IMM: f"{dst} &= {insn.imm}",
            Op.AND_REG: f"{dst} &= {src}",
            Op.OR_IMM: f"{dst} |= {insn.imm}",
            Op.OR_REG: f"{dst} |= {src}",
            Op.XOR_IMM: f"{dst} ^= {insn.imm}",
            Op.XOR_REG: f"{dst} ^= {src}",
            Op.LSH_IMM: f"{dst} <<= {insn.imm}",
            Op.RSH_IMM: f"{dst} >>= {insn.imm}",
            Op.NEG: f"{dst} = -{dst}",
        }.get(op)
        if mnemonic is None:
            raise ValueError(f"cannot disassemble {op}")
        body = mnemonic
    return f"{index:4d}: {body}"


def disassemble(program: Program) -> str:
    """Full program listing."""
    header = f"{program.name or '<anon>'}: {program.prog_type.value}, {len(program)} insns"
    lines = [header]
    lines.extend(
        disassemble_insn(insn, index) for index, insn in enumerate(program.insns)
    )
    return "\n".join(lines)


@dataclass
class ProgStat:
    """`bpftool prog` row: where a program is attached and its work done."""

    hook: str
    program: str
    prog_type: str
    insns: int
    fire_count: int
    total_insns_executed: int

    @property
    def avg_insns_per_fire(self) -> float:
        if self.fire_count == 0:
            return 0.0
        return self.total_insns_executed / self.fire_count


def prog_list(hooks: Iterable[HookPoint]) -> list[ProgStat]:
    """Aggregate stats for every program attached to the given hooks."""
    stats = []
    for hook in hooks:
        for program in hook.programs:
            stats.append(
                ProgStat(
                    hook=hook.name,
                    program=program.name or "<anon>",
                    prog_type=program.prog_type.value,
                    insns=len(program),
                    fire_count=hook.fire_count,
                    total_insns_executed=hook.total_insns,
                )
            )
    return stats


def render_prog_list(hooks: Iterable[HookPoint]) -> str:
    lines = [f"{'hook':24s} {'program':26s} {'type':8s} {'insns':>5s} {'fires':>8s}"]
    for stat in prog_list(hooks):
        lines.append(
            f"{stat.hook:24s} {stat.program:26s} {stat.prog_type:8s} "
            f"{stat.insns:5d} {stat.fire_count:8d}"
        )
    return "\n".join(lines)


def map_dump(bpf_map: BpfMap, limit: int = 64) -> str:
    """`bpftool map dump`-style rendering of one map's contents."""
    header = f"{bpf_map.name or '<anon>'}: {bpf_map.map_type}, max {bpf_map.max_entries}"
    lines = [header]
    if isinstance(bpf_map, ArrayMap):
        for index in range(min(bpf_map.max_entries, limit)):
            lines.append(f"  [{index}] = {bpf_map.lookup(index)}")
    elif isinstance(bpf_map, SockMap):
        for key in sorted(bpf_map.keys())[:limit]:
            endpoint = bpf_map.lookup(key)
            owner = getattr(endpoint, "owner_tag", type(endpoint).__name__)
            lines.append(f"  [{key}] = socket:{owner}")
    elif isinstance(bpf_map, HashMap):
        for key in sorted(bpf_map.keys())[:limit]:
            lines.append(f"  [{key:#x}] = {bpf_map.lookup(key)}")
    return "\n".join(lines)


def registry_summary(registry: MapRegistry) -> str:
    """All maps on the node, one line each."""
    lines = ["fd   type      entries  name"]
    for fd in sorted(registry._maps):
        bpf_map = registry.get(fd)
        used = len(bpf_map) if isinstance(bpf_map, HashMap) else bpf_map.max_entries
        lines.append(
            f"{fd:<4d} {bpf_map.map_type:9s} {used:>7} {bpf_map.name or '<anon>'}"
        )
    return "\n".join(lines)
