"""Instruction set of the simulated eBPF virtual machine.

A deliberately faithful subset of real eBPF: eleven 64-bit registers
(R0-R9 general purpose, R10 read-only frame pointer), ALU ops, sized
loads/stores against a flat memory, conditional forward jumps, helper calls,
and EXIT. Programs are sequences of :class:`Insn`; the builder in
:mod:`assembler` provides mnemonic construction with labels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

NUM_REGISTERS = 11
R0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10 = range(NUM_REGISTERS)
FRAME_POINTER = R10
STACK_SIZE = 512  # bytes, like real eBPF
WORD_MASK = (1 << 64) - 1


class Op(enum.Enum):
    """Operation codes (mnemonic form; no binary encoding needed)."""

    MOV_IMM = "mov_imm"        # dst = imm
    MOV_REG = "mov_reg"        # dst = src
    ADD_IMM = "add_imm"
    ADD_REG = "add_reg"
    SUB_IMM = "sub_imm"
    SUB_REG = "sub_reg"
    MUL_IMM = "mul_imm"
    MUL_REG = "mul_reg"
    DIV_IMM = "div_imm"
    DIV_REG = "div_reg"
    MOD_IMM = "mod_imm"
    MOD_REG = "mod_reg"
    AND_IMM = "and_imm"
    AND_REG = "and_reg"
    OR_IMM = "or_imm"
    OR_REG = "or_reg"
    XOR_IMM = "xor_imm"
    XOR_REG = "xor_reg"
    LSH_IMM = "lsh_imm"
    RSH_IMM = "rsh_imm"
    NEG = "neg"
    LD8 = "ld8"                # dst = *(u8  *)(src + off)
    LD16 = "ld16"
    LD32 = "ld32"
    LD64 = "ld64"
    ST8 = "st8"                # *(u8  *)(dst + off) = src
    ST16 = "st16"
    ST32 = "st32"
    ST64 = "st64"
    ST_IMM32 = "st_imm32"      # *(u32 *)(dst + off) = imm
    JA = "ja"                  # unconditional forward jump by off
    JEQ_IMM = "jeq_imm"        # if dst == imm: jump by off
    JEQ_REG = "jeq_reg"
    JNE_IMM = "jne_imm"
    JNE_REG = "jne_reg"
    JGT_IMM = "jgt_imm"
    JGE_IMM = "jge_imm"
    JLT_IMM = "jlt_imm"
    JLE_IMM = "jle_imm"
    JSET_IMM = "jset_imm"      # if dst & imm: jump
    CALL = "call"              # helper call, helper id in imm
    EXIT = "exit"              # return R0

    @property
    def is_jump(self) -> bool:
        return self in _JUMPS

    @property
    def is_load(self) -> bool:
        return self in (Op.LD8, Op.LD16, Op.LD32, Op.LD64)

    @property
    def is_store(self) -> bool:
        return self in (Op.ST8, Op.ST16, Op.ST32, Op.ST64, Op.ST_IMM32)


_JUMPS = {
    Op.JA,
    Op.JEQ_IMM,
    Op.JEQ_REG,
    Op.JNE_IMM,
    Op.JNE_REG,
    Op.JGT_IMM,
    Op.JGE_IMM,
    Op.JLT_IMM,
    Op.JLE_IMM,
    Op.JSET_IMM,
}

LOAD_SIZES = {Op.LD8: 1, Op.LD16: 2, Op.LD32: 4, Op.LD64: 8}
STORE_SIZES = {Op.ST8: 1, Op.ST16: 2, Op.ST32: 4, Op.ST64: 8, Op.ST_IMM32: 4}


@dataclass(frozen=True)
class Insn:
    """One instruction: ``op dst, src, off, imm`` (unused fields zero)."""

    op: Op
    dst: int = 0
    src: int = 0
    off: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for register in (self.dst, self.src):
            if not 0 <= register < NUM_REGISTERS:
                raise ValueError(f"invalid register r{register}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Insn({self.op.value}, dst=r{self.dst}, src=r{self.src}, "
            f"off={self.off}, imm={self.imm})"
        )


class ProgramType(enum.Enum):
    """Program types (hook families) the simulated kernel accepts."""

    XDP = "xdp"
    TC = "tc"  # sched_cls
    SK_MSG = "sk_msg"
    SOCK_OPS = "sock_ops"
    TRACE = "trace"  # kprobe-style metric programs


# Return codes, per hook family (values match Linux).
XDP_ABORTED = 0
XDP_DROP = 1
XDP_PASS = 2
XDP_TX = 3
XDP_REDIRECT = 4

TC_ACT_OK = 0
TC_ACT_SHOT = 2
TC_ACT_REDIRECT = 7

SK_DROP = 0
SK_PASS = 1


@dataclass(frozen=True)
class Program:
    """A verified-loadable program: instructions plus its type."""

    insns: tuple[Insn, ...]
    prog_type: ProgramType
    name: str = ""

    def __len__(self) -> int:
        return len(self.insns)
