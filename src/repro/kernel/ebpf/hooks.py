"""Kernel hook points where eBPF programs attach and fire.

A hook point accepts only programs of its family (XDP on NIC RX, TC on veth,
SK_MSG on sockets), verifies them at attach time, and executes every attached
program in order when an event arrives — exactly the kernel's behaviour that
makes SPRIGHT's overhead load-proportional: no event, no execution, no cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .isa import Program, ProgramType
from .verifier import verify
from .vm import RunResult, Scratch, Vm


class HookError(Exception):
    """Bad attach/detach operations."""


@dataclass
class HookRun:
    """Aggregate outcome of firing a hook: last verdict + total work done."""

    results: list[RunResult]

    @property
    def verdict(self) -> int:
        return self.results[-1].return_value if self.results else 0

    @property
    def insns_executed(self) -> int:
        return sum(result.insns_executed for result in self.results)

    @property
    def scratch(self) -> Optional[Scratch]:
        return self.results[-1].scratch if self.results else None


class HookPoint:
    """A named attach point (e.g. ``xdp@eth0``, ``sk_msg@fn-1``)."""

    def __init__(self, name: str, prog_type: ProgramType, vm: Vm) -> None:
        self.name = name
        self.prog_type = prog_type
        self.vm = vm
        self.programs: list[Program] = []
        self.fire_count = 0
        self.total_insns = 0

    def attach(self, program: Program) -> None:
        """Verify and attach; rejects wrong-family programs like the kernel."""
        if program.prog_type is not self.prog_type:
            raise HookError(
                f"cannot attach {program.prog_type.value} program "
                f"{program.name!r} to {self.prog_type.value} hook {self.name!r}"
            )
        verify(program)
        self.programs.append(program)

    def detach(self, program: Program) -> None:
        try:
            self.programs.remove(program)
        except ValueError:
            raise HookError(f"{program.name!r} is not attached to {self.name!r}") from None

    @property
    def is_armed(self) -> bool:
        return bool(self.programs)

    def fire(self, data: bytes = b"", scratch: Optional[Scratch] = None) -> HookRun:
        """Run all attached programs on an event. No programs -> no work."""
        scratch = scratch or Scratch(map_registry=self.vm.map_registry)
        results = [self.vm.run(program, data=data, scratch=scratch) for program in self.programs]
        run = HookRun(results=results)
        self.fire_count += 1
        self.total_insns += run.insns_executed
        return run
