"""Simulated Linux kernel substrate: costs, packets, stack, eBPF, devices."""

from .costs import CostModel, DEFAULT_COSTS, NodeConfig, usec
from .fib import FibEntry, FibTable
from .iptables import Rule, RuleChain, Traversal, Verdict, kubernetes_like_chain
from .netdev import DeviceRegistry, NetDevice, PhysicalNic, VethEndpoint, VethPair
from .ops import KernelOps
from .packet import FiveTuple, Message, Packet

__all__ = [
    "CostModel",
    "DEFAULT_COSTS",
    "DeviceRegistry",
    "FibEntry",
    "FibTable",
    "FiveTuple",
    "KernelOps",
    "Message",
    "NetDevice",
    "NodeConfig",
    "Packet",
    "PhysicalNic",
    "Rule",
    "RuleChain",
    "Traversal",
    "Verdict",
    "VethEndpoint",
    "VethPair",
    "kubernetes_like_chain",
    "usec",
]
