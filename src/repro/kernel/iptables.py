"""iptables rule chains: the cost the kernel path pays and XDP/TC skips.

Kubernetes CNIs install long NAT/filter chains that every packet walks; [61]
attributes ~60% of container networking overhead to them. We model chains as
ordered rule lists with first-match semantics. The *length* of the walk is
what feeds the cost model; the match logic itself is exercised by tests and
by the dataplane's service-IP translation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from .packet import Packet


class Verdict(enum.Enum):
    ACCEPT = "accept"
    DROP = "drop"
    DNAT = "dnat"
    RETURN = "return"


@dataclass
class Rule:
    """One iptables rule: optional matchers, a verdict, optional NAT target."""

    verdict: Verdict
    dst_ip: Optional[str] = None
    dst_port: Optional[int] = None
    protocol: Optional[str] = None
    nat_to: Optional[tuple[str, int]] = None
    comment: str = ""

    def matches(self, packet: Packet) -> bool:
        flow = packet.flow
        if self.dst_ip is not None and flow.dst_ip != self.dst_ip:
            return False
        if self.dst_port is not None and flow.dst_port != self.dst_port:
            return False
        if self.protocol is not None and flow.protocol != self.protocol:
            return False
        return True


@dataclass
class Traversal:
    """Result of walking a chain: verdict + how many rules were evaluated."""

    verdict: Verdict
    rules_walked: int
    nat_to: Optional[tuple[str, int]] = None


class RuleChain:
    """An ordered, first-match iptables chain (e.g. KUBE-SERVICES)."""

    def __init__(self, name: str, default_verdict: Verdict = Verdict.ACCEPT) -> None:
        self.name = name
        self.default_verdict = default_verdict
        self.rules: list[Rule] = []

    def append(self, rule: Rule) -> None:
        self.rules.append(rule)

    def insert(self, index: int, rule: Rule) -> None:
        self.rules.insert(index, rule)

    def __len__(self) -> int:
        return len(self.rules)

    def evaluate(self, packet: Packet) -> Traversal:
        """Walk the chain; every rule inspected costs the packet time."""
        for index, rule in enumerate(self.rules):
            if rule.matches(packet):
                return Traversal(
                    verdict=rule.verdict,
                    rules_walked=index + 1,
                    nat_to=rule.nat_to,
                )
        return Traversal(verdict=self.default_verdict, rules_walked=len(self.rules))


def kubernetes_like_chain(
    service_entries: list[tuple[str, int, str, int]], filler_rules: int = 80
) -> RuleChain:
    """Build a KUBE-SERVICES-style chain.

    ``service_entries`` are (service_ip, service_port, pod_ip, pod_port)
    DNAT translations; ``filler_rules`` pad the chain with non-matching
    entries the way a busy node's conntrack/filter tables do, so the walk
    length is realistic.
    """
    chain = RuleChain("KUBE-SERVICES")
    for index in range(filler_rules):
        chain.append(
            Rule(
                verdict=Verdict.ACCEPT,
                dst_ip=f"203.0.113.{index % 250 + 1}",
                dst_port=40000 + index,
                comment=f"filler-{index}",
            )
        )
    for service_ip, service_port, pod_ip, pod_port in service_entries:
        chain.append(
            Rule(
                verdict=Verdict.DNAT,
                dst_ip=service_ip,
                dst_port=service_port,
                nat_to=(pod_ip, pod_port),
                comment=f"svc {service_ip}:{service_port}",
            )
        )
    return chain
