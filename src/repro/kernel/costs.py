"""Calibrated cost model for the simulated node.

Every latency/CPU number the simulation produces traces back to the constants
here. Units are **seconds** (constructors accept microseconds for
readability). Defaults are calibrated so that the spot measurements in the
paper's §3.2.2 land in band for a 2-function chain:

* S-SPRIGHT ~0.02-0.04 ms response delay, D-SPRIGHT slightly lower,
  Knative ~6x higher;
* D-SPRIGHT burns >3 dedicated cores at any load while S-SPRIGHT's CPU is
  load-proportional.

The per-request *counts* of each operation are not free parameters: they come
from the audit framework (`repro.audit`) and must equal Tables 1 and 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def usec(value: float) -> float:
    """Convert microseconds to seconds (the model's base unit)."""
    return value * 1e-6


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs of the simulated kernel and runtime.

    Attributes are grouped by the overhead classes audited in Table 1:
    copies, context switches, interrupts, protocol processing,
    serialization/deserialization — plus the SPRIGHT-specific mechanisms
    (eBPF, sockmap, rings, shared memory).
    """

    # -- data movement -----------------------------------------------------
    copy_fixed: float = usec(0.30)          # per-copy setup (cache, mmu)
    copy_per_byte: float = usec(0.0001)     # ~10 GB/s memcpy
    # -- scheduling --------------------------------------------------------
    context_switch: float = usec(1.2)       # direct + indirect cost [52]
    interrupt: float = usec(0.8)            # hard irq + softirq dispatch
    syscall: float = usec(0.5)              # user/kernel boundary crossing
    wakeup_latency: float = usec(0.7)       # runnable -> running (uncontended)
    # -- kernel protocol stack ----------------------------------------------
    protocol_stack: float = usec(3.0)       # TCP/IP rx or tx traversal
    iptables_per_rule: float = usec(0.05)   # conntrack/filter rule walk
    iptables_rules: int = 50                # typical k8s node [61]
    netfilter_fixed: float = usec(0.8)
    checksum_per_byte: float = usec(0.0003) # software checksum
    veth_traversal: float = usec(0.6)       # veth pair hop
    nic_dma: float = usec(1.0)              # NIC rx/tx DMA + descriptor
    # -- serialization (HTTP/gRPC/REST) --------------------------------------
    serialize_fixed: float = usec(1.0)
    serialize_per_byte: float = usec(0.002)   # ~500 MB/s marshalling
    deserialize_fixed: float = usec(1.2)
    deserialize_per_byte: float = usec(0.0025)
    # -- eBPF -----------------------------------------------------------------
    ebpf_instruction: float = usec(0.004)     # ~4 ns/insn JIT-adjacent
    ebpf_map_lookup: float = usec(0.15)
    ebpf_map_update: float = usec(0.25)
    sockmap_redirect: float = usec(0.5)       # bpf_msg_redirect_map fast path
    xdp_fixed: float = usec(0.4)              # XDP frame handling
    tc_fixed: float = usec(0.5)
    fib_lookup: float = usec(0.3)
    # -- shared memory / DPDK ----------------------------------------------
    ring_enqueue: float = usec(0.05)
    ring_dequeue: float = usec(0.05)
    poll_iteration: float = usec(0.1)          # one empty poll loop
    shm_pool_get: float = usec(0.2)            # mbuf alloc from mempool
    shm_pool_put: float = usec(0.15)
    hugepage_access_discount: float = 0.85     # TLB-friendly access factor
    descriptor_bytes: int = 16                 # SPROXY packet descriptor
    # -- cluster fabric (east-west, NIC-to-NIC over ToR) ---------------------
    xnode_link_latency: float = usec(25.0)     # propagation + switch hop
    xnode_bandwidth_bps: float = 10e9          # 10 GbE fabric links
    # -- λ-NIC SmartNIC offload (programmable NIC cores) ---------------------
    nic_compute_cores: float = 4.0             # wimpy RISC cores on the NIC
    nic_compute_slowdown: float = 2.75         # host-seconds -> NIC-seconds
    nic_offload_ceiling: float = usec(60.0)    # heaviest offloadable handler
    # -- machine ----------------------------------------------------------------
    cpu_freq_hz: float = 2.2e9                  # c220g5: Intel @ 2.2 GHz
    cores: int = 40

    # Derived helpers --------------------------------------------------------
    def copy(self, nbytes: int) -> float:
        """Cost of one data copy of ``nbytes``."""
        return self.copy_fixed + nbytes * self.copy_per_byte

    def serialize(self, nbytes: int) -> float:
        return self.serialize_fixed + nbytes * self.serialize_per_byte

    def deserialize(self, nbytes: int) -> float:
        return self.deserialize_fixed + nbytes * self.deserialize_per_byte

    def iptables_walk(self) -> float:
        return self.netfilter_fixed + self.iptables_rules * self.iptables_per_rule

    def protocol_processing(self, nbytes: int) -> float:
        """One protocol-stack traversal incl. software checksum and iptables."""
        return (
            self.protocol_stack
            + nbytes * self.checksum_per_byte
            + self.iptables_walk()
        )

    def ebpf_run(self, instructions: int) -> float:
        return instructions * self.ebpf_instruction

    def cycles(self, seconds: float) -> float:
        """Convert seconds of CPU time to cycles on this machine."""
        return seconds * self.cpu_freq_hz

    def seconds_from_cycles(self, cycles: float) -> float:
        return cycles / self.cpu_freq_hz


DEFAULT_COSTS = CostModel()


@dataclass
class NodeConfig:
    """Knobs describing the simulated worker node and experiment defaults."""

    costs: CostModel = field(default_factory=CostModel)
    cores: int = 40
    cpu_bucket_width: float = 1.0
    root_seed: int = 2022
    # Knative-specific defaults, from the paper's testbed section.
    function_concurrency: int = 32      # per-pod parallel request limit
    scale_down_grace_period: float = 30.0
    pod_startup_mean: float = 2.2       # seconds; cold start of a pod
    pod_startup_cv: float = 0.35
    termination_lag: float = 80.0       # observed sluggish scale-down (Fig 12)
