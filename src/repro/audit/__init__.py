"""Overhead auditing framework (reproduces Tables 1 and 2).

The paper audits each data-pipeline step ①-⑤ of a '1 broker/front-end +
2 functions' chain for six overhead classes. Here, the counts are not typed
in by hand: the simulated components report every operation they perform
through a :class:`RequestTrace`, and the tables are aggregations of real
execution traces — so if a dataplane implementation changes, its audit
changes with it.
"""

from .auditor import (
    AuditTable,
    Auditor,
    DESCRIPTOR_WIRE_BYTES,
    OverheadKind,
    RequestTrace,
    Stage,
)

__all__ = [
    "AuditTable",
    "Auditor",
    "DESCRIPTOR_WIRE_BYTES",
    "OverheadKind",
    "RequestTrace",
    "Stage",
]
