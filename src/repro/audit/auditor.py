"""Per-request overhead counting, aggregated into paper-style audit tables."""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..mem import DESCRIPTOR_SIZE

#: Bytes crossing sockets/rings per within-chain hop in SPRIGHT — the
#: context for Table 2's zero rows: only this versioned, generation-tagged
#: descriptor moves between functions, never the payload. (Was 16 in the
#: paper's v1 layout; v2 adds the version header and the ABA generation.)
DESCRIPTOR_WIRE_BYTES = DESCRIPTOR_SIZE


class OverheadKind(enum.Enum):
    """The six overhead classes audited in Tables 1 and 2."""

    COPY = "# of copies"
    CONTEXT_SWITCH = "# of context switches"
    INTERRUPT = "# of interrupts"
    PROTOCOL_PROCESSING = "# of protocol processing tasks"
    SERIALIZATION = "# of serialization"
    DESERIALIZATION = "# of deserialization"


class Stage(enum.Enum):
    """Data-pipeline steps ①-⑤ from Fig. 1 of the paper.

    ①: client -> broker/front-end through the ingress gateway.
    ②: queue/registration at the broker/front-end.
    ③: broker/front-end -> head function.
    ④: function processing (incl. sidecar traversal) / fn-to-fn with DFR.
    ⑤: broker/front-end -> next function.
    """

    STEP_1 = "①"
    STEP_2 = "②"
    STEP_3 = "③"
    STEP_4 = "④"
    STEP_5 = "⑤"

    @property
    def external(self) -> bool:
        return self in (Stage.STEP_1, Stage.STEP_2)

    @property
    def within_chain(self) -> bool:
        return not self.external


EXTERNAL_STAGES = (Stage.STEP_1, Stage.STEP_2)
CHAIN_STAGES = (Stage.STEP_3, Stage.STEP_4, Stage.STEP_5)


@dataclass
class RequestTrace:
    """Counts of every audited operation performed for one request."""

    counts: dict = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(int))
    )
    request_id: int = 0
    completed: bool = False  # set when the traced request finishes

    def count(self, stage: Stage, kind: OverheadKind, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self.counts[stage][kind] += amount

    def get(self, stage: Stage, kind: OverheadKind) -> int:
        return self.counts[stage][kind]

    def total(self, kind: OverheadKind, stages: Optional[Iterable[Stage]] = None) -> int:
        chosen = list(Stage) if stages is None else list(stages)
        return sum(self.counts[stage][kind] for stage in chosen)


@dataclass
class AuditTable:
    """A Table-1/2-shaped summary: per-step, external, chain, total counts."""

    per_stage: dict
    name: str = ""

    def stage(self, stage: Stage, kind: OverheadKind) -> int:
        return self.per_stage[stage][kind]

    def external_total(self, kind: OverheadKind) -> int:
        return sum(self.per_stage[stage][kind] for stage in EXTERNAL_STAGES)

    def chain_total(self, kind: OverheadKind) -> int:
        return sum(self.per_stage[stage][kind] for stage in CHAIN_STAGES)

    def total(self, kind: OverheadKind) -> int:
        return self.external_total(kind) + self.chain_total(kind)

    def row(self, kind: OverheadKind) -> dict:
        """One table row in the paper's column layout."""
        return {
            "①": self.stage(Stage.STEP_1, kind),
            "②": self.stage(Stage.STEP_2, kind),
            "external": self.external_total(kind),
            "③": self.stage(Stage.STEP_3, kind),
            "④": self.stage(Stage.STEP_4, kind),
            "⑤": self.stage(Stage.STEP_5, kind),
            "within chain": self.chain_total(kind),
            "total": self.total(kind),
        }

    def render(self) -> str:
        """Plain-text rendering in the paper's row order."""
        lines = [f"Audit: {self.name}"]
        header = f"{'overhead':34s} {'①':>4s} {'②':>4s} {'ext':>4s} {'③':>4s} {'④':>4s} {'⑤':>4s} {'chain':>6s} {'total':>6s}"
        lines.append(header)
        for kind in OverheadKind:
            row = self.row(kind)
            lines.append(
                f"{kind.value:34s} {row['①']:4d} {row['②']:4d} {row['external']:4d} "
                f"{row['③']:4d} {row['④']:4d} {row['⑤']:4d} "
                f"{row['within chain']:6d} {row['total']:6d}"
            )
        return "\n".join(lines)


class Auditor:
    """Collects request traces and reduces them to an :class:`AuditTable`.

    The paper audits the *minimum* per-request overhead; we therefore take
    the per-stage minimum across traces (implementation noise such as extra
    same-core context switches can only add counts, never remove them).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.traces: list[RequestTrace] = []

    def new_trace(self) -> RequestTrace:
        trace = RequestTrace(request_id=len(self.traces) + 1)
        self.traces.append(trace)
        return trace

    def table(self) -> AuditTable:
        """Reduce completed traces (in-flight requests have partial counts)."""
        traces = [trace for trace in self.traces if trace.completed]
        if not traces:
            traces = self.traces  # fall back: caller audited manually
        if not traces:
            raise ValueError("no traces were recorded")
        per_stage: dict = {
            stage: {kind: None for kind in OverheadKind} for stage in Stage
        }
        for trace in traces:
            for stage in Stage:
                for kind in OverheadKind:
                    value = trace.get(stage, kind)
                    current = per_stage[stage][kind]
                    if current is None or value < current:
                        per_stage[stage][kind] = value
        finalized = {
            stage: {kind: int(per_stage[stage][kind] or 0) for kind in OverheadKind}
            for stage in Stage
        }
        return AuditTable(per_stage=finalized, name=self.name)
