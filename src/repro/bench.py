"""The continuous benchmark trajectory: ``spright-repro bench``.

ROADMAP item 1 demands a perf baseline *before* the DES speed overhaul; this
module is that baseline and the harness every later perf PR reruns. A fixed
scenario matrix — boutique and motion chains × all five dataplanes ×
1- and 3-node clusters — is driven through the cluster dataplane with a
fixed seed, and each cell reports three throughput numbers:

* **wall_s** — wall-clock seconds the simulation loop took (the quantity a
  perf PR moves);
* **sim_req_per_wall_s** — simulated requests completed per wall second;
* **events_per_wall_s** — simulator events processed per wall second (the
  purest DES-engine metric, independent of request size).

``run_bench`` emits a schema-checked payload; ``write_trajectory`` persists
it as ``BENCH_<pr>.json`` at the repo root, and ``compare`` gates the new
trajectory point against the newest prior ``BENCH_*.json`` within a
tolerance (default 15%, matching the CI job). Requests/events counts are
deterministic for a seed, so a count change flags a *behavioral* change
even when timing noise hides a throughput one.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Sequence

from .cluster import ClusterDataplane, ClusterScheduler, build_cluster
from .dataplane import RequestClass
from .runtime import ChainSpec
from .runtime.scheduler import NodeDescriptor
from .stats import LatencyRecorder
from .workloads import ClosedLoopGenerator, WeightedMix, boutique, motion

#: Bump when a PR re-lands the trajectory file; CI compares against the
#: newest BENCH_<n>.json with n < PR_NUMBER.
PR_NUMBER = 9
SCHEMA = "spright.bench/1"

BENCH_PLANES = ("knative", "grpc", "s-spright", "d-spright", "lambda-nic")
BENCH_WORKLOADS = ("boutique", "motion")
BENCH_NODE_COUNTS = (1, 3)

_BENCH_FILE = re.compile(r"^BENCH_(\d+)\.json$")


def bench_chain(workload: str, plane: str) -> ChainSpec:
    """The fixed chain a bench cell runs — never change these casually:
    a changed chain breaks trajectory comparability across PRs."""
    if workload == "boutique":
        functions = (
            boutique.spright_functions()
            if plane in ("s-spright", "d-spright", "lambda-nic")
            else boutique.go_grpc_functions()
        )
        return ChainSpec("bench-boutique", functions)
    if workload == "motion":
        return ChainSpec("bench-motion", motion.motion_functions())
    raise KeyError(f"unknown bench workload {workload!r}")


def bench_capacity(nodes: int) -> float:
    """Schedulable cores per node: the 10-function boutique chain asks for
    ~6.7 cores total, so 3-node cells get 4.0 to force a real multi-node
    placement while still fitting."""
    return 8.0 if nodes == 1 else 4.0


@dataclass
class BenchCell:
    """One (workload, plane, nodes) point of the matrix."""

    scenario: str
    workload: str
    plane: str
    nodes: int
    sim_duration_s: float
    wall_s: float
    requests: int
    events: int
    sim_req_per_wall_s: float
    events_per_wall_s: float
    p50_ms: float
    p99_ms: float


def run_bench_cell(
    workload: str,
    plane: str,
    nodes: int,
    duration: float = 0.8,
    seed: int = 2022,
    concurrency: int = 12,
) -> BenchCell:
    """Build the cell's cluster, run it, time the simulation loop."""
    chain = bench_chain(workload, plane)
    fabric = build_cluster(nodes, seed=seed, cores=8)
    scheduler = ClusterScheduler(
        [
            NodeDescriptor(name=name, cores=bench_capacity(nodes))
            for name in fabric.nodes
        ]
    )
    placement = scheduler.place(chain, "chain_locality")
    dataplane = ClusterDataplane(fabric, chain, plane, placement)
    recorder = LatencyRecorder()
    generator = ClosedLoopGenerator(
        dataplane.ingress_node,
        dataplane,
        WeightedMix([RequestClass("seq", sequence=chain.function_names)]),
        recorder,
        concurrency=concurrency,
        duration=duration,
        client_overhead=0.0007,
    )
    generator.start()
    started = time.perf_counter()
    fabric.env.run(until=duration)
    fabric.env.run(until=duration + 0.25)  # drain in-flight requests
    wall = time.perf_counter() - started
    dataplane.teardown()
    requests = recorder.count("")
    events = fabric.env.events_processed
    summary = recorder.summary("") if requests else None
    return BenchCell(
        scenario=f"{workload}/{plane}/n{nodes}",
        workload=workload,
        plane=plane,
        nodes=nodes,
        sim_duration_s=duration,
        wall_s=wall,
        requests=requests,
        events=events,
        sim_req_per_wall_s=requests / wall if wall > 0 else 0.0,
        events_per_wall_s=events / wall if wall > 0 else 0.0,
        p50_ms=(summary.p50 * 1e3) if summary else 0.0,
        p99_ms=(summary.p99 * 1e3) if summary else 0.0,
    )


def run_bench(
    duration: float = 0.8,
    seed: int = 2022,
    concurrency: int = 12,
    workloads: Sequence[str] = BENCH_WORKLOADS,
    planes: Sequence[str] = BENCH_PLANES,
    node_counts: Sequence[int] = BENCH_NODE_COUNTS,
    pr: int = PR_NUMBER,
) -> dict:
    """The full matrix as a schema-valid trajectory payload."""
    cells = [
        run_bench_cell(
            workload, plane, nodes,
            duration=duration, seed=seed, concurrency=concurrency,
        )
        for workload in workloads
        for plane in planes
        for nodes in node_counts
    ]
    wall = sum(cell.wall_s for cell in cells)
    requests = sum(cell.requests for cell in cells)
    events = sum(cell.events for cell in cells)
    payload = {
        "schema": SCHEMA,
        "pr": pr,
        "config": {
            "duration_s": duration,
            "seed": seed,
            "concurrency": concurrency,
            "placement": "chain_locality",
        },
        "cells": [asdict(cell) for cell in cells],
        "totals": {
            "wall_s": wall,
            "requests": requests,
            "events": events,
            "sim_req_per_wall_s": requests / wall if wall > 0 else 0.0,
            "events_per_wall_s": events / wall if wall > 0 else 0.0,
        },
    }
    errors = validate_payload(payload)
    if errors:  # pragma: no cover - a bug in this module, not a data path
        raise AssertionError(f"bench payload failed validation: {errors[:5]}")
    return payload


# -- schema -------------------------------------------------------------------

_CELL_NUMBERS = (
    "sim_duration_s",
    "wall_s",
    "sim_req_per_wall_s",
    "events_per_wall_s",
    "p50_ms",
    "p99_ms",
)
_CELL_COUNTS = ("requests", "events", "nodes")
_CELL_STRINGS = ("scenario", "workload", "plane")
_TOTAL_KEYS = (
    "wall_s",
    "requests",
    "events",
    "sim_req_per_wall_s",
    "events_per_wall_s",
)


def validate_payload(payload: dict) -> list[str]:
    """Structural validation of a trajectory payload; [] when valid.

    Mirrors ``tests/schemas/bench.schema.json`` (the copy external tools
    consume) — a unit test asserts the two stay in agreement.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["payload must be an object"]
    if payload.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}")
    if not isinstance(payload.get("pr"), int) or payload.get("pr", 0) < 1:
        errors.append("pr must be a positive integer")
    cells = payload.get("cells")
    if not isinstance(cells, list) or not cells:
        errors.append("cells must be a non-empty array")
        cells = []
    seen = set()
    for index, cell in enumerate(cells):
        where = f"cells[{index}]"
        if not isinstance(cell, dict):
            errors.append(f"{where}: must be an object")
            continue
        for key in _CELL_STRINGS:
            if not isinstance(cell.get(key), str) or not cell.get(key):
                errors.append(f"{where}.{key}: must be a non-empty string")
        for key in _CELL_COUNTS:
            value = cell.get(key)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                errors.append(f"{where}.{key}: must be a non-negative integer")
        for key in _CELL_NUMBERS:
            value = cell.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{where}.{key}: must be a number")
            elif value < 0:
                errors.append(f"{where}.{key}: must be >= 0")
        scenario = cell.get("scenario")
        if scenario in seen:
            errors.append(f"{where}.scenario: duplicate {scenario!r}")
        seen.add(scenario)
    totals = payload.get("totals")
    if not isinstance(totals, dict):
        errors.append("totals must be an object")
    else:
        for key in _TOTAL_KEYS:
            value = totals.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"totals.{key}: must be a number")
    return errors


# -- trajectory files ---------------------------------------------------------

def trajectory_path(directory, pr: int = PR_NUMBER) -> Path:
    return Path(directory) / f"BENCH_{pr}.json"


def write_trajectory(payload: dict, directory) -> Path:
    path = trajectory_path(directory, payload["pr"])
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def find_previous(directory, pr: int = PR_NUMBER) -> Optional[Path]:
    """The newest ``BENCH_<n>.json`` with ``n < pr``, or None."""
    best: Optional[tuple[int, Path]] = None
    for path in Path(directory).glob("BENCH_*.json"):
        match = _BENCH_FILE.match(path.name)
        if not match:
            continue
        number = int(match.group(1))
        if number < pr and (best is None or number > best[0]):
            best = (number, path)
    return best[1] if best else None


# -- the tolerance gate -------------------------------------------------------

@dataclass
class Comparison:
    """Current vs previous trajectory point."""

    previous_pr: int
    tolerance: float
    throughput_ratio: float       # current / previous events_per_wall_s
    request_ratio: float          # current / previous sim_req_per_wall_s
    regressed: bool
    cell_notes: list[str]
    behavior_changes: list[str]   # deterministic count drifts (informative)


def compare(current: dict, previous: dict, tolerance: float = 0.15) -> Comparison:
    """Gate ``current`` against ``previous``: fail on a >tolerance drop in
    aggregate engine throughput (events/wall-s) or request throughput.

    The gate is aggregate — per-cell wall timings at sub-second durations
    are too noisy to gate on individually — but every matched cell that
    individually drops past tolerance is named in ``cell_notes``, and any
    change in a cell's deterministic request/event *counts* is surfaced as
    a behavior change.
    """
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    floor = 1.0 - tolerance
    current_totals = current["totals"]
    previous_totals = previous["totals"]

    def ratio(key: str) -> float:
        denominator = previous_totals.get(key) or 0.0
        if denominator <= 0:
            return 1.0
        return (current_totals.get(key) or 0.0) / denominator

    throughput_ratio = ratio("events_per_wall_s")
    request_ratio = ratio("sim_req_per_wall_s")

    previous_cells = {cell["scenario"]: cell for cell in previous["cells"]}
    cell_notes: list[str] = []
    behavior_changes: list[str] = []
    for cell in current["cells"]:
        other = previous_cells.get(cell["scenario"])
        if other is None:
            cell_notes.append(f"{cell['scenario']}: new scenario (no baseline)")
            continue
        if other.get("events_per_wall_s", 0) > 0:
            cell_ratio = cell["events_per_wall_s"] / other["events_per_wall_s"]
            if cell_ratio < floor:
                cell_notes.append(
                    f"{cell['scenario']}: events/s {cell_ratio:.2f}x of baseline"
                )
        for key in ("requests", "events"):
            if cell.get(key) != other.get(key):
                behavior_changes.append(
                    f"{cell['scenario']}: {key} {other.get(key)} -> {cell.get(key)}"
                )
    return Comparison(
        previous_pr=previous["pr"],
        tolerance=tolerance,
        throughput_ratio=throughput_ratio,
        request_ratio=request_ratio,
        regressed=throughput_ratio < floor or request_ratio < floor,
        cell_notes=cell_notes,
        behavior_changes=behavior_changes,
    )


# -- reporting ----------------------------------------------------------------

def format_report(payload: dict, comparison: Optional[Comparison] = None) -> str:
    from .stats import format_table

    rows = [
        [
            cell["scenario"],
            f"{cell['wall_s']:.3f}",
            cell["requests"],
            f"{cell['sim_req_per_wall_s']:.0f}",
            cell["events"],
            f"{cell['events_per_wall_s']:.0f}",
            f"{cell['p50_ms']:.3f}",
            f"{cell['p99_ms']:.3f}",
        ]
        for cell in payload["cells"]
    ]
    totals = payload["totals"]
    rows.append(
        [
            "TOTAL",
            f"{totals['wall_s']:.3f}",
            totals["requests"],
            f"{totals['sim_req_per_wall_s']:.0f}",
            totals["events"],
            f"{totals['events_per_wall_s']:.0f}",
            "",
            "",
        ]
    )
    sections = [
        format_table(
            ["scenario", "wall s", "reqs", "req/s", "events", "events/s",
             "p50 ms", "p99 ms"],
            rows,
            title=f"Bench trajectory (PR {payload['pr']})",
        )
    ]
    if comparison is None:
        sections.append("baseline: none (first trajectory point)")
    else:
        lines = [
            f"baseline: BENCH_{comparison.previous_pr}.json "
            f"(tolerance {comparison.tolerance:.0%})",
            f"events/wall-s ratio: {comparison.throughput_ratio:.2f}x",
            f"sim-req/wall-s ratio: {comparison.request_ratio:.2f}x",
        ]
        lines.extend(f"  note: {note}" for note in comparison.cell_notes)
        lines.extend(
            f"  behavior: {change}" for change in comparison.behavior_changes
        )
        lines.append(
            "verdict: bench regression gate "
            + ("FAILED" if comparison.regressed else "passed")
        )
        sections.append("\n".join(lines))
    return "\n\n".join(sections)
