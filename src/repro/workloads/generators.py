"""Load generators: closed-loop (ab/wrk/Locust style) and open-loop traces.

The paper's three drivers map onto two shapes:

* **Closed loop** — N concurrent virtual users, each issuing the next
  request only after the previous response (ab's ``-c``, Locust users with
  think time, wrk connections). ``spawn_rate`` ramps users up gradually,
  exactly like Locust's spawn rate in §4.2.1.
* **Open loop** — timestamped event traces (the motion detector events,
  parking-lot snapshot bursts) submitted regardless of completions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional, Sequence, Union

from ..audit import Auditor
from ..dataplane.base import Dataplane, Request, RequestClass
from ..stats import LatencyRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime import WorkerNode


def make_payload(size: int, fill: bytes = b"x") -> bytes:
    """Deterministic payload bytes of a given size."""
    if size <= 0:
        return b""
    return (fill * (size // len(fill) + 1))[:size]


@dataclass
class WeightedMix:
    """Pick request classes by weight from a named RNG stream."""

    classes: Sequence[RequestClass]
    stream: str = "workload/mix"

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("need at least one request class")
        self._weights = [cls.weight for cls in self.classes]
        # Validate here, with names, instead of deferring to the opaque
        # error random.choices raises mid-run on a bad weight vector.
        for cls, weight in zip(self.classes, self._weights):
            if weight < 0:
                raise ValueError(
                    f"request class {cls.name!r} has negative weight {weight!r}"
                )
        if sum(self._weights) <= 0:
            raise ValueError("request class weights must sum to a positive total")

    def pick(self, node: "WorkerNode") -> RequestClass:
        return node.rng.choice(self.stream, list(self.classes), weights=self._weights)


class ClosedLoopGenerator:
    """N virtual users in a request->response->think loop."""

    def __init__(
        self,
        node: "WorkerNode",
        plane: Dataplane,
        mix: WeightedMix,
        recorder: LatencyRecorder,
        concurrency: int,
        duration: float,
        spawn_rate: Optional[float] = None,
        think_time: Optional[Callable[["WorkerNode"], float]] = None,
        client_overhead: float = 0.0,
        auditor: Optional[Auditor] = None,
        warmup: float = 0.0,
        start_jitter: float = 0.01,
    ) -> None:
        if concurrency <= 0:
            raise ValueError("concurrency must be positive")
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.node = node
        self.plane = plane
        self.mix = mix
        self.recorder = recorder
        self.concurrency = concurrency
        self.duration = duration
        self.spawn_rate = spawn_rate
        self.think_time = think_time
        self.client_overhead = client_overhead
        self.auditor = auditor
        self.warmup = warmup
        # Real clients never fire in perfect lockstep; a small random start
        # offset per connection prevents artificial phase-locking.
        self.start_jitter = start_jitter
        self.requests_sent = 0
        self.requests_failed = 0

    def start(self) -> None:
        self.node.env.process(self._spawner(), name="loadgen-spawner")

    def _spawner(self):
        env = self.node.env
        interval = 0.0 if not self.spawn_rate else 1.0 / self.spawn_rate
        for user_index in range(self.concurrency):
            env.process(self._user(user_index), name=f"user-{user_index}")
            if interval:
                yield env.timeout(interval)

    def _user(self, user_index: int):
        env = self.node.env
        end_time = self.duration
        if self.start_jitter > 0:
            yield env.timeout(
                self.node.rng.uniform(f"loadgen/jitter", 0.0, self.start_jitter)
            )
        while env.now < end_time:
            request_class = self.mix.pick(self.node)
            trace = self.auditor.new_trace() if self.auditor else None
            request = Request(
                request_class=request_class,
                payload=make_payload(request_class.payload_size),
                created_at=env.now,
                trace=trace,
            )
            self.requests_sent += 1
            yield env.process(self.plane.submit(request))
            if request.failed:
                self.requests_failed += 1
            elif request.completed_at is not None and env.now >= self.warmup:
                self.recorder.record(env.now, request.latency, group=request_class.name)
                self.recorder.record(env.now, request.latency, group="")
            if self.client_overhead > 0:
                # +/-30% request-to-request variation, like a real client.
                yield env.timeout(
                    self.node.rng.uniform(
                        "loadgen/client",
                        0.7 * self.client_overhead,
                        1.3 * self.client_overhead,
                    )
                )
            if self.think_time is not None:
                yield env.timeout(self.think_time(self.node))


@dataclass
class TraceEvent:
    """One open-loop arrival."""

    time: float
    request_class: RequestClass
    payload: bytes = b""


class NonMonotonicTraceError(ValueError):
    """A streaming trace yielded an event earlier than its predecessor.

    Materialized traces (lists) are sorted on construction, but a streaming
    source cannot be sorted without defeating its purpose — so out-of-order
    timestamps are a contract violation surfaced loudly and typed, never
    silently reordered.
    """

    def __init__(self, previous: float, current: float) -> None:
        super().__init__(
            f"streaming trace went backwards: {current!r} after {previous!r}"
        )
        self.previous = previous
        self.current = current


class OpenLoopGenerator:
    """Submit a timestamped trace, irrespective of in-flight requests.

    ``trace`` accepts two shapes:

    * a **sequence** of :class:`TraceEvent` — materialized and sorted, the
      historical path every existing caller uses;
    * any other **iterable/iterator** (e.g. a generator adapting a
      :class:`repro.traffic.ArrivalSource`) — consumed lazily, one event at
      a time, so a day of fleet traffic is never held in memory. Streaming
      events must arrive in non-decreasing time order; a violation raises
      :class:`NonMonotonicTraceError` at submission time.
    """

    def __init__(
        self,
        node: "WorkerNode",
        plane: Dataplane,
        trace: Union[Sequence[TraceEvent], Iterable[TraceEvent]],
        recorder: LatencyRecorder,
    ) -> None:
        self.node = node
        self.plane = plane
        if isinstance(trace, Sequence):
            self.trace: Optional[list[TraceEvent]] = sorted(
                trace, key=lambda event: event.time
            )
            self._stream: Optional[Iterable[TraceEvent]] = None
        else:
            self.trace = None
            self._stream = trace
        self.recorder = recorder
        self.submitted = 0
        self.failed = 0

    @property
    def streaming(self) -> bool:
        return self._stream is not None

    def start(self) -> None:
        self.node.env.process(self._run(), name="openloop")

    def _events(self) -> Iterator[TraceEvent]:
        if self.trace is not None:
            yield from self.trace
            return
        last_time: Optional[float] = None
        for event in self._stream:
            if last_time is not None and event.time < last_time:
                raise NonMonotonicTraceError(last_time, event.time)
            last_time = event.time
            yield event

    def _run(self):
        env = self.node.env
        for event in self._events():
            delay = event.time - env.now
            if delay > 0:
                yield env.timeout(delay)
            env.process(self._one(event))
            self.submitted += 1
        if not self.submitted:
            yield env.timeout(0)

    def _one(self, event: TraceEvent):
        env = self.node.env
        payload = event.payload or make_payload(event.request_class.payload_size)
        request = Request(
            request_class=event.request_class,
            payload=payload,
            created_at=env.now,
            trace=None,
        )
        yield env.process(self.plane.submit(request))
        if request.failed:
            # Lost to a fault the resilience policy could not absorb; it
            # counts against goodput, not toward the latency distribution.
            self.failed += 1
            return
        self.recorder.record(env.now, request.latency, group=event.request_class.name)
        self.recorder.record(env.now, request.latency, group="")
