"""In-memory key-value store: the boutique's 'in-memory DB' (Fig 8a).

The cart service and the parking plate-metadata path both hit an in-memory
store (Redis in the upstream boutique). This substrate stores real values
with LRU eviction and returns the access cost of each operation, which
behaviors fold into their service time — so data-dependent CPU (cart size,
metadata cardinality) is part of the measured latency rather than a fixed
constant.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

# Redis-grade in-memory operation costs.
GET_COST = 1.5e-6
PUT_COST = 2.0e-6
SCAN_COST_PER_KEY = 0.1e-6
VALUE_COST_PER_BYTE = 0.002e-6


class KvError(Exception):
    """Capacity misuse or malformed operations."""


@dataclass
class KvStats:
    gets: int = 0
    puts: int = 0
    deletes: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    scans: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class KvStore:
    """LRU-bounded in-memory KV with per-operation cost reporting.

    Every operation returns ``(result, seconds)``; the caller (a function
    behavior) adds the seconds to its service time.
    """

    def __init__(self, name: str = "kv", max_entries: int = 100_000) -> None:
        if max_entries <= 0:
            raise KvError("max_entries must be positive")
        self.name = name
        self.max_entries = max_entries
        self._data: OrderedDict[str, bytes] = OrderedDict()
        self.stats = KvStats()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: str) -> tuple[Optional[bytes], float]:
        self.stats.gets += 1
        value = self._data.get(key)
        if value is None:
            self.stats.misses += 1
            return None, GET_COST
        self.stats.hits += 1
        self._data.move_to_end(key)
        return value, GET_COST + len(value) * VALUE_COST_PER_BYTE

    def put(self, key: str, value: bytes) -> float:
        self.stats.puts += 1
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        cost = PUT_COST + len(value) * VALUE_COST_PER_BYTE
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)
            self.stats.evictions += 1
        return cost

    def delete(self, key: str) -> tuple[bool, float]:
        self.stats.deletes += 1
        existed = self._data.pop(key, None) is not None
        return existed, GET_COST

    def scan_prefix(self, prefix: str, limit: int = 100) -> tuple[list[str], float]:
        """Prefix scan; cost scales with keys examined (the expensive op)."""
        self.stats.scans += 1
        matches = [key for key in self._data if key.startswith(prefix)][:limit]
        return matches, SCAN_COST_PER_KEY * len(self._data) + GET_COST

    def contains(self, key: str) -> tuple[bool, float]:
        value, cost = self.get(key)
        return value is not None, cost


def shared_store(context: dict, name: str = "db", max_entries: int = 100_000) -> KvStore:
    """Per-pod store accessor used by function behaviors."""
    store = context.get(name)
    if store is None:
        store = KvStore(name=name, max_entries=max_entries)
        context[name] = store
    return store
