"""Workloads: load generators + the paper's three evaluation scenarios."""

from .generators import (
    ClosedLoopGenerator,
    NonMonotonicTraceError,
    OpenLoopGenerator,
    TraceEvent,
    WeightedMix,
    make_payload,
)
from .kvstore import KvError, KvStats, KvStore, shared_store
from . import boutique, kvstore, motion, parking

__all__ = [
    "ClosedLoopGenerator",
    "NonMonotonicTraceError",
    "OpenLoopGenerator",
    "TraceEvent",
    "WeightedMix",
    "boutique",
    "KvError",
    "KvStats",
    "KvStore",
    "kvstore",
    "shared_store",
    "make_payload",
    "motion",
    "parking",
]
