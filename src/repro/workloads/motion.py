"""IoT motion-detection workload (§4.1 scenario 2, Fig 11).

The paper replays the MERL motion detector dataset [72]: office-building
PIR sensors, so activity arrives in bursts (people walking corridors)
separated by long quiet gaps — exactly the intermittent pattern that makes
cold starts hurt. The dataset itself is not redistributable here, so
:func:`synthesize_motion_trace` generates a statistically similar trace:
alternating active/idle periods with bursty arrivals inside active periods.

The chain is Fig 8(b): sensor function -> actuator function, 1 ms CPU each.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..dataplane.base import RequestClass
from ..runtime import FunctionResult, FunctionSpec
from .generators import TraceEvent

SENSOR_SERVICE_TIME = 1e-3    # paper: both functions set to 1 ms
ACTUATOR_SERVICE_TIME = 1e-3


def _sensor_behavior(payload: bytes, context: dict) -> FunctionResult:
    """Track per-sensor state transitions; emit an actuation command."""
    state = context.setdefault("sensor_state", {})
    try:
        event = json.loads(payload.decode())
    except (ValueError, UnicodeDecodeError):
        event = {"sensor": "unknown", "motion": True}
    sensor_id = str(event.get("sensor", "unknown"))
    state[sensor_id] = bool(event.get("motion", True))
    command = {"light": sensor_id, "on": state[sensor_id]}
    return FunctionResult(payload=json.dumps(command).encode(), topic="actuate")


def _actuator_behavior(payload: bytes, context: dict) -> FunctionResult:
    """Apply the command to the light registry."""
    lights = context.setdefault("lights", {})
    try:
        command = json.loads(payload.decode())
    except (ValueError, UnicodeDecodeError):
        command = {"light": "unknown", "on": True}
    lights[str(command.get("light"))] = bool(command.get("on", True))
    return FunctionResult(payload=b'{"ok": true}')


def motion_functions(min_scale: int = 1) -> list[FunctionSpec]:
    """Sensor + actuator chain; ``min_scale=0`` enables Knative zero-scaling."""
    return [
        FunctionSpec(
            name="sensor",
            service_time=SENSOR_SERVICE_TIME,
            service_time_cv=0.15,
            min_scale=min_scale,
            behavior=_sensor_behavior,
        ),
        FunctionSpec(
            name="actuator",
            service_time=ACTUATOR_SERVICE_TIME,
            service_time_cv=0.15,
            min_scale=min_scale,
            behavior=_actuator_behavior,
        ),
    ]


def motion_request_class() -> RequestClass:
    return RequestClass(
        name="motion",
        sequence=["sensor", "actuator"],
        payload_size=96,
        response_size=64,
    )


@dataclass
class MotionTraceParams:
    """Shape of the synthetic MERL-like trace."""

    duration: float = 3600.0        # the paper runs 1 hour
    active_period_mean: float = 90.0
    idle_period_mean: float = 240.0  # long gaps: zero-scale kicks in (>30 s)
    burst_interarrival_mean: float = 3.0
    sensors: int = 16


def synthesize_motion_trace(node, params: MotionTraceParams) -> list[TraceEvent]:
    """Alternating active/idle periods; bursty arrivals while active."""
    request_class = motion_request_class()
    trace: list[TraceEvent] = []
    now = 0.0
    active = False
    while now < params.duration:
        if active:
            period = node.rng.exponential("motion/active", params.active_period_mean)
            end = min(now + period, params.duration)
            while now < end:
                gap = node.rng.exponential(
                    "motion/burst", params.burst_interarrival_mean
                )
                now += gap
                if now >= end:
                    break
                sensor = int(
                    node.rng.uniform("motion/sensor", 0, params.sensors)
                )
                payload = json.dumps({"sensor": sensor, "motion": True}).encode()
                trace.append(
                    TraceEvent(time=now, request_class=request_class, payload=payload)
                )
            now = end
        else:
            now += node.rng.exponential("motion/idle", params.idle_period_mean)
        active = not active
    return trace
