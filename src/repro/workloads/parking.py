"""Parking: image detection & charging workload (§4.1 scenario 3, Fig 12).

CNRPark+EXT-style operation: a camera snapshots each of 164 parking spots
every 240 seconds; each ~3 KB snapshot drives plate detection (VGG-16,
435 ms of CPU), a plate-metadata search, and either the full persist path
(Ch-1) or the already-known fast path (Ch-2) — service times per Table 4.

The dataset images are not redistributable; synthetic 3 KB 'snapshots'
carrying a plate string preserve everything the experiment measures
(arrival pattern, payload size, branch mix, CPU cost).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..dataplane.base import RequestClass
from ..runtime import FunctionResult, FunctionSpec
from .generators import TraceEvent, make_payload

# Table 4 CPU service times (seconds).
SERVICE_TIMES = {
    "plate-detection": 0.435,  # VGG-16 inference [40]
    "plate-search": 0.020,
    "plate-index": 0.001,
    "persist-metadata": 0.010,
    "charging": 0.050,
}

SNAPSHOT_BYTES = 3 * 1024  # ~3 KB, 150x150-pixel snapshot
PARKING_SPOTS = 164
SNAPSHOT_INTERVAL = 240.0

# Ch-1: plate not yet stored -> index + persist before charging.
CH1_SEQUENCE = [
    "plate-detection",
    "plate-search",
    "plate-index",
    "persist-metadata",
    "charging",
]
# Ch-2: plate already known -> straight to charging.
CH2_SEQUENCE = ["plate-detection", "plate-search", "charging"]


def _detection_behavior(payload: bytes, context: dict) -> FunctionResult:
    """'Detect' the plate: extract the plate string embedded in the snapshot."""
    marker = payload.find(b"PLATE:")
    plate = (
        payload[marker + 6 : marker + 14].decode(errors="replace")
        if marker >= 0
        else "UNKNOWN"
    )
    return FunctionResult(payload=json.dumps({"plate": plate}).encode())


def _search_behavior(payload: bytes, context: dict) -> FunctionResult:
    from .kvstore import shared_store

    db = shared_store(context, "plate-db")
    record = json.loads(payload.decode())
    known, cost = db.contains(f"plate:{record.get('plate')}")
    record["known"] = known
    return FunctionResult(
        payload=json.dumps(record).encode(), extra_service_time=cost
    )


def _persist_behavior(payload: bytes, context: dict) -> FunctionResult:
    from .kvstore import shared_store

    db = shared_store(context, "plate-db")
    record = json.loads(payload.decode())
    cost = db.put(
        f"plate:{record.get('plate', 'UNKNOWN')}", b'{"first_seen": true}'
    )
    return FunctionResult(
        payload=json.dumps(record).encode(), extra_service_time=cost
    )


def _charging_behavior(payload: bytes, context: dict) -> FunctionResult:
    ledger = context.setdefault("ledger", {})
    record = json.loads(payload.decode())
    plate = record.get("plate", "UNKNOWN")
    ledger[plate] = ledger.get(plate, 0.0) + 2.50
    return FunctionResult(
        payload=json.dumps({"plate": plate, "charged": ledger[plate]}).encode()
    )


_BEHAVIORS = {
    "plate-detection": _detection_behavior,
    "plate-search": _search_behavior,
    "persist-metadata": _persist_behavior,
    "charging": _charging_behavior,
}


def parking_functions(min_scale: int = 1, max_scale: int = 40) -> list[FunctionSpec]:
    return [
        FunctionSpec(
            name=name,
            service_time=SERVICE_TIMES[name],
            service_time_cv=0.10,
            min_scale=min_scale,
            max_scale=max_scale,
            concurrency=32,
            behavior=_BEHAVIORS.get(name, _BEHAVIORS["plate-detection"]),
        )
        for name in SERVICE_TIMES
    ]


def parking_request_classes() -> dict[str, RequestClass]:
    return {
        "Ch-1": RequestClass(
            name="Ch-1",
            sequence=CH1_SEQUENCE,
            payload_size=SNAPSHOT_BYTES,
            response_size=256,
        ),
        "Ch-2": RequestClass(
            name="Ch-2",
            sequence=CH2_SEQUENCE,
            payload_size=SNAPSHOT_BYTES,
            response_size=256,
        ),
    }


def make_snapshot(plate: str) -> bytes:
    """A synthetic 3 KB snapshot with the plate string embedded."""
    header = f"PLATE:{plate:<8s}".encode()
    return header + make_payload(SNAPSHOT_BYTES - len(header), fill=b"\x89IMG")


@dataclass
class ParkingTraceParams:
    duration: float = 700.0          # Fig 12's 700 s window
    spots: int = PARKING_SPOTS
    interval: float = SNAPSHOT_INTERVAL
    known_plate_fraction: float = 0.8  # most cars were seen before -> Ch-2
    burst_spread: float = 20.0         # camera sweeps spots over ~20 s


def synthesize_parking_trace(node, params: ParkingTraceParams) -> list[TraceEvent]:
    """Every ``interval`` seconds, one snapshot per spot, spread over a sweep."""
    classes = parking_request_classes()
    trace: list[TraceEvent] = []
    burst_start = 0.0
    burst_index = 0
    while burst_start < params.duration:
        offsets = node.rng.spread(
            f"parking/burst-{burst_index}", params.spots, params.burst_spread
        )
        for spot, offset in enumerate(offsets):
            known = (
                node.rng.uniform(f"parking/known", 0.0, 1.0)
                < params.known_plate_fraction
            )
            request_class = classes["Ch-2"] if known else classes["Ch-1"]
            plate = f"CA{spot:04d}"
            trace.append(
                TraceEvent(
                    time=burst_start + offset,
                    request_class=request_class,
                    payload=make_snapshot(plate),
                )
            )
        burst_start += params.interval
        burst_index += 1
    return trace


def next_burst_times(params: ParkingTraceParams) -> list[float]:
    """Burst schedule (used to pre-warm Knative 20 s ahead, §4.2.2)."""
    times = []
    burst_start = 0.0
    while burst_start < params.duration:
        times.append(burst_start)
        burst_start += params.interval
    return times
