"""The Online Boutique workload (§4.2.1, Figs 9/10, Tables 3 and 5).

Ten microservices and the six call sequences of Table 3, with Locust-style
weights and think times. Two ports exist, as in the paper: the Go/gRPC
functions used by the Knative and gRPC modes (heavy language-runtime and
marshalling overhead per invocation) and the C port used by SPRIGHT (the
same application logic without the runtime baggage).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..dataplane.base import RequestClass
from ..runtime import FunctionResult, FunctionSpec

# Function index -> name, following Table 3's legend.
SERVICES = {
    1: "frontend",
    2: "currency",
    3: "product-catalog",
    4: "cart",
    5: "recommendation",
    6: "shipping",
    7: "checkout",
    8: "payment",
    9: "email",
    10: "ad",
}

# Pure application service time per invocation (seconds) — what the C port
# costs. Chosen so the full mix lands near the paper's ~3.5 cores for
# S-SPRIGHT functions at 25K users (§4.2.1).
SERVICE_TIMES = {
    "frontend": 80e-6,
    "currency": 25e-6,
    "product-catalog": 45e-6,
    "cart": 55e-6,
    "recommendation": 70e-6,
    "shipping": 45e-6,
    "checkout": 120e-6,
    "payment": 65e-6,
    "email": 55e-6,
    "ad": 35e-6,
}

# Go + gRPC server overhead per invocation (critical-path, background).
GO_RUNTIME_PATH = 400e-6
GO_RUNTIME_BG = 1800e-6

# Table 3 call sequences (function indexes).
CALL_SEQUENCES = {
    "Ch-1": [1, 2, 1, 3, 1, 4, 1, 2, 1, 10, 1],
    "Ch-2": [1],
    "Ch-3": [1, 3, 1, 2, 1, 4, 1, 2, 1, 5, 1, 4, 1, 10, 1],
    "Ch-4": [1, 2, 1, 4, 1, 5, 1, 6, 1, 2, 1, 3, 1, 2, 1],
    "Ch-5": [1, 3, 1, 4, 1],
    "Ch-6": [1, 7, 4, 7, 3, 7, 2, 7, 6, 7, 2, 7, 8, 7, 6, 7, 4, 7, 9, 7, 1, 5, 1, 2, 1],
}

# Locust task weights from the upstream boutique locustfile.
MIX_WEIGHTS = {
    "Ch-1": 1.0,   # index
    "Ch-2": 2.0,   # setCurrency
    "Ch-3": 10.0,  # browseProduct
    "Ch-4": 3.0,   # viewCart
    "Ch-5": 2.0,   # addToCart
    "Ch-6": 1.0,   # checkout
}

PAYLOAD_SIZES = {
    "Ch-1": 128,
    "Ch-2": 64,
    "Ch-3": 128,
    "Ch-4": 96,
    "Ch-5": 256,
    "Ch-6": 512,
}

RESPONSE_SIZES = {
    "Ch-1": 8192,
    "Ch-2": 256,
    "Ch-3": 4096,
    "Ch-4": 2048,
    "Ch-5": 512,
    "Ch-6": 1024,
}


def _catalog_behavior(payload: bytes, context: dict) -> FunctionResult:
    """Product catalog: serve items from an in-memory table."""
    catalog = context.setdefault(
        "catalog",
        {f"sku-{index}": {"price_usd": 9 + index} for index in range(32)},
    )
    body = json.dumps(sorted(catalog)[:8]).encode()
    return FunctionResult(payload=body)


def _cart_behavior(payload: bytes, context: dict) -> FunctionResult:
    """Cart: session carts live in the in-memory DB of Fig 8(a)."""
    from .kvstore import shared_store

    store = shared_store(context, "cart-db")
    session = payload[:8].hex() or "anonymous"
    current, get_cost = store.get(f"cart:{session}")
    items = (json.loads(current) if current else []) + [len(payload)]
    if len(items) > 64:
        items = items[-32:]
    put_cost = store.put(f"cart:{session}", json.dumps(items).encode())
    return FunctionResult(
        payload=json.dumps({"items": len(items)}).encode(),
        extra_service_time=get_cost + put_cost,
    )


def _default_behavior(payload: bytes, context: dict) -> FunctionResult:
    return FunctionResult(payload=payload)


_BEHAVIORS = {
    "product-catalog": _catalog_behavior,
    "cart": _cart_behavior,
}


def spright_functions(concurrency: int = 32) -> list[FunctionSpec]:
    """The C port: application service time only (§3.8's porting)."""
    return [
        FunctionSpec(
            name=name,
            service_time=SERVICE_TIMES[name],
            service_time_cv=0.3,
            concurrency=concurrency,
            behavior=_BEHAVIORS.get(name, _default_behavior),
        )
        for name in SERVICES.values()
    ]


def go_grpc_functions(concurrency: int = 32) -> list[FunctionSpec]:
    """The Go/gRPC port used by the Knative and gRPC modes."""
    return [
        FunctionSpec(
            name=name,
            service_time=SERVICE_TIMES[name],
            service_time_cv=0.3,
            concurrency=concurrency,
            behavior=_BEHAVIORS.get(name, _default_behavior),
            runtime_overhead_path=GO_RUNTIME_PATH,
            runtime_overhead_bg=GO_RUNTIME_BG,
        )
        for name in SERVICES.values()
    ]


def request_classes() -> list[RequestClass]:
    """Table 3 as request classes (sequences resolved to function names)."""
    classes = []
    for chain_name, indexes in CALL_SEQUENCES.items():
        classes.append(
            RequestClass(
                name=chain_name,
                sequence=[SERVICES[index] for index in indexes],
                payload_size=PAYLOAD_SIZES[chain_name],
                response_size=RESPONSE_SIZES[chain_name],
                weight=MIX_WEIGHTS[chain_name],
            )
        )
    return classes


def locust_think_time(node) -> float:
    """Locust's ``wait_time = between(1, 10)`` from the boutique repo."""
    return node.rng.uniform("boutique/think", 1.0, 10.0)


@dataclass
class BoutiqueScenario:
    """Bundle used by experiments: functions + mix + think time."""

    concurrency_users: int
    spawn_rate: float
    duration: float

    def mean_offered_rps(self) -> float:
        """Closed-loop equilibrium estimate: users / mean think time."""
        return self.concurrency_users / 5.5
